"""Determinism lint (``DET001``–``DET006``).

The event engine, the collectives and the task scheduler all assume a
bit-reproducible run: every tie-break, iteration order and random draw
must be fixed by the inputs.  These rules flag the constructs that break
that silently across processes (hash-randomised set order, ``id()``
values, unseeded generators) or across refactors (shared constant-seed
fallbacks, float equality on accumulated simulated time).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

from ..engine import Context, Rule, register
from .units import unit_pass

#: Legacy global-state numpy RNG entry points (`np.random.<fn>`).
_NUMPY_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "standard_normal",
    "uniform", "normal", "binomial", "poisson", "exponential", "bytes",
}
#: Stdlib `random` module functions with process-global state.
_STDLIB_RANDOM = {
    "seed", "random", "randint", "randrange", "getrandbits", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "gauss",
    "normalvariate", "expovariate", "betavariate", "paretovariate",
}


def _dotted(node: ast.expr) -> Optional[str]:
    """`np.random.default_rng` -> "np.random.default_rng"."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Names bound by imports, mapped to the canonical module path."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _canonical(dotted: str, aliases: Dict[str, str]) -> str:
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def _is_constant_seed(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, int)


@register
class UnseededRandom(Rule):
    id = "DET001"
    name = "unseeded-random"
    description = (
        "Unseeded np.random.default_rng()/SeedSequence(), legacy "
        "np.random.* global-state calls, or stdlib random.* calls — all "
        "draw from process-global or entropy-seeded state."
    )

    def check(self, ctx: Context) -> Iterator:
        aliases = _module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            canonical = _canonical(dotted, aliases)
            if canonical in (
                "numpy.random.default_rng",
                "numpy.random.SeedSequence",
            ):
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded and not node.keywords:
                    yield ctx.finding(
                        self,
                        node,
                        f"{canonical.rsplit('.', 1)[1]}() without a seed draws "
                        "OS entropy; thread a seeded generator instead",
                    )
            elif (
                canonical.startswith("numpy.random.")
                and canonical.rsplit(".", 1)[1] in _NUMPY_LEGACY
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"legacy global-state call {dotted}(); use a seeded "
                    "np.random.Generator",
                )
            elif (
                canonical.startswith("random.")
                and canonical.rsplit(".", 1)[1] in _STDLIB_RANDOM
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"stdlib {dotted}() uses process-global state; use a "
                    "seeded np.random.Generator",
                )


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "difference", "union", "intersection", "symmetric_difference",
        ):
            return _is_set_expr(node.func.value, set_names) or any(
                _is_set_expr(arg, set_names) for arg in node.args
            )
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


@register
class SetIterationOrder(Rule):
    id = "DET002"
    name = "set-iteration-order"
    description = (
        "Iterating (or materialising) a set in an order-sensitive "
        "position; set order depends on hashing, which is randomised for "
        "strings — sort first when the order feeds scheduling."
    )

    def check(self, ctx: Context) -> Iterator:
        set_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, set_names):
                        set_names.add(target.id)
                    else:
                        set_names.discard(target.id)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
                node.iter, set_names
            ):
                yield ctx.finding(
                    self, node, "for-loop iterates a set in hash order; "
                    "wrap the iterable in sorted()"
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for comp in node.generators:
                    if _is_set_expr(comp.iter, set_names):
                        yield ctx.finding(
                            self, node, "comprehension iterates a set in hash "
                            "order; wrap the iterable in sorted()"
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                yield ctx.finding(
                    self, node, f"{node.func.id}() of a set materialises hash "
                    "order; use sorted() instead"
                )


@register
class FloatTimeEquality(Rule):
    id = "DET003"
    name = "float-time-equality"
    description = (
        "== / != between two seconds-dimension expressions; accumulated "
        "float simulated time must be compared with tolerances or event "
        "ordering, never exact equality."
    )

    def check(self, ctx: Context) -> Iterator:
        for node in unit_pass(ctx).time_eq_nodes:
            yield ctx.finding(
                self,
                node,
                "float equality between simulated-time expressions; use an "
                "epsilon or compare event ordering instead",
            )


@register
class IdentityOrdering(Rule):
    id = "DET004"
    name = "identity-ordering"
    description = (
        "id() used as a dict/set key or ordering tie-break; CPython "
        "addresses change run to run, so any ordering or serialisation "
        "derived from them is process-nondeterministic."
    )

    def check(self, ctx: Context) -> Iterator:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
                and not node.keywords
            ):
                yield ctx.finding(
                    self,
                    node,
                    "id()-derived keys/ordering differ between runs; key on a "
                    "stable index or name instead",
                )


#: Packages whose results must be pure functions of their inputs: the
#: event engine and the fault subsystem both promise bit-reproducible
#: replays, so the wall clock may never leak into them.
_SIMULATED_TIME_PACKAGES = ("netsim", "faults")

#: `time.<fn>` entry points that read the host clock.
_WALL_CLOCK = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}


@register
class WallClockInSimulation(Rule):
    id = "DET006"
    name = "wall-clock-in-simulation"
    description = (
        "time.time()/time.perf_counter()-style host-clock reads inside "
        "repro.netsim or repro.faults; these packages run on the "
        "simulated clock and must replay bit-identically, so timestamps "
        "must come from the event engine, never the host."
    )

    def check(self, ctx: Context) -> Iterator:
        parts = Path(ctx.path).parts
        if not any(pkg in parts for pkg in _SIMULATED_TIME_PACKAGES):
            return
        aliases = _module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            canonical = _canonical(dotted, aliases)
            head, _, fn = canonical.rpartition(".")
            if head == "time" and fn in _WALL_CLOCK:
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}() reads the host clock inside a "
                    "simulated-time package; use the event engine's "
                    "`now` instead",
                )
            elif canonical in ("datetime.datetime.now", "datetime.datetime.utcnow"):
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}() reads the host clock inside a "
                    "simulated-time package; thread timestamps in as data",
                )


@register
class ConstantSeedFallback(Rule):
    id = "DET005"
    name = "constant-seed-fallback"
    description = (
        "`rng or np.random.default_rng(0)`-style fallback: every caller "
        "that omits rng silently shares one constant seed, making "
        "'independent' components identical. Thread one seeded generator "
        "from the constructor instead."
    )

    def check(self, ctx: Context) -> Iterator:
        aliases = _module_aliases(ctx.tree)

        def is_const_default_rng(node: ast.expr) -> bool:
            if not isinstance(node, ast.Call):
                return False
            dotted = _dotted(node.func)
            if dotted is None:
                return False
            return (
                _canonical(dotted, aliases) == "numpy.random.default_rng"
                and len(node.args) == 1
                and _is_constant_seed(node.args[0])
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                for value in node.values[1:]:
                    if is_const_default_rng(value):
                        yield ctx.finding(
                            self,
                            node,
                            "constant-seed default_rng fallback shares one "
                            "stream across callers; require/thread a generator",
                        )
            elif isinstance(node, ast.IfExp):
                for branch in (node.body, node.orelse):
                    if is_const_default_rng(branch):
                        yield ctx.finding(
                            self,
                            node,
                            "constant-seed default_rng fallback shares one "
                            "stream across callers; require/thread a generator",
                        )
