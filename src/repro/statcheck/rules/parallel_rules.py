"""Parallel-dispatch safety (``PAR001``).

The process-parallel sweep executor (:mod:`repro.perf.parallel`) merges
worker results purely by content key — which is only sound when the
dispatched kernel is a pure function of its canonicalized arguments.
The runtime half of that gate is ``sweep_point`` refusing callables
outside ``MEMOIZED_SWEEPS``; this module is the static half:

``PAR001``
    Every ``sweep_point(fn, ...)`` dispatch site must name a callable
    whose interprocedural effect summary is empty of impure atoms.  A
    target that mutates state, reads mutable globals, touches the
    clock/RNG/environment or does IO would make the parallel merge
    order observable — workers racing on a shared resource — so the
    dispatch is flagged at the call site.  A target the analysis cannot
    resolve at all is also flagged: purity that cannot be proven does
    not license a process boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..effects import describe, effect_pass
from ..engine import Context, Rule, register


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _dispatch_sites(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _callee_name(node) == "sweep_point":
            yield node


def _target_name(call: ast.Call) -> Optional[str]:
    """Bare name of the dispatched callable (first positional arg)."""
    if not call.args:
        return None
    target = call.args[0]
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@register
class ImpureParallelDispatch(Rule):
    id = "PAR001"
    name = "impure-parallel-dispatch"
    description = (
        "A `sweep_point` dispatch targets a callable with a non-empty "
        "impure effect summary (or one the effect analysis cannot "
        "resolve); only statically pure memoized kernels may be "
        "sharded across worker processes."
    )

    def check(self, ctx: Context) -> Iterator:
        sites = list(_dispatch_sites(ctx.tree))
        if not sites:
            return
        analysis = effect_pass(ctx)
        for call in sites:
            bare = _target_name(call)
            if bare is None:
                yield ctx.finding(
                    self, call,
                    "`sweep_point` dispatches a computed callable; the "
                    "effect analysis cannot prove it pure, so it must "
                    "not cross a process boundary",
                )
                continue
            candidates: List = [
                summary
                for summary in analysis.summaries.values()
                if summary.qualname.rsplit(".", 1)[-1] == bare
            ]
            if not candidates:
                yield ctx.finding(
                    self, call,
                    f"`sweep_point` dispatches `{bare}`, which the "
                    "effect analysis cannot resolve; unproven purity "
                    "does not license parallel dispatch",
                )
                continue
            for summary in candidates:
                for atom in summary.transitive.impure:
                    origin = summary.origin_of(atom)
                    via = (
                        "" if origin == summary.qualname
                        else f" (via `{origin}`)"
                    )
                    yield ctx.finding(
                        self, call,
                        f"`sweep_point` dispatches `{bare}`, which "
                        f"{describe(atom)}{via}; worker processes would "
                        "race on that state, so the deterministic-merge "
                        "contract breaks",
                    )
