"""Symbolic dimension algebra for the shape abstract interpreter.

A :class:`SymDim` is an exact multivariate polynomial over *atoms* with
:class:`~fractions.Fraction` coefficients, plus two integer-division
atoms (floor and ceiling) that keep tile arithmetic like

.. code:: text

    T            = m + r - 1
    tiles_high   = ceildiv(H + 2*p - r + 1, m)
    padded       = (tiles_high - 1) * m + T

closed under the operations the Winograd pipeline actually performs.
Values are immutable, hashable and structurally comparable: two
dimensions are equal iff their canonical term maps are equal (so
``m + r - 1 == r + m - 1`` but ``ceildiv(a, b)`` is *not* identified
with ``floordiv(a + b - 1, b)`` — semantic identities are checked by
evaluation over concrete models, see the hypothesis suite).

The algebra is deliberately small: ``+ - * **`` with non-negative
integer exponents, exact division where it stays polynomial, and
floor/ceil division that simplifies when the quotient is exact.
"""

from __future__ import annotations

import ast
import math
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Number = Union[int, Fraction]

# An atom is a symbol name or a division node; a monomial maps atoms to
# positive integer exponents, stored as a sorted tuple of pairs.
Atom = Union[str, "_DivAtom"]
Monomial = Tuple[Tuple[Atom, int], ...]


class SymDimError(ValueError):
    """Raised for operations leaving the supported algebra."""


def _atom_key(atom: Atom) -> Tuple[int, str]:
    if isinstance(atom, str):
        return (0, atom)
    return (1, repr(atom))


class _DivAtom:
    """Opaque ``floordiv``/``ceildiv`` node (immutable, hashable)."""

    __slots__ = ("num", "den", "ceil", "_hash")

    def __init__(self, num: "SymDim", den: "SymDim", ceil: bool) -> None:
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)
        object.__setattr__(self, "ceil", ceil)
        object.__setattr__(self, "_hash", hash((num, den, ceil)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("_DivAtom is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _DivAtom)
            and self.ceil == other.ceil
            and self.num == other.num
            and self.den == other.den
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        fn = "ceildiv" if self.ceil else "floordiv"
        return f"{fn}({self.num}, {self.den})"


class SymDim:
    """An exact symbolic dimension (immutable)."""

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Fraction]) -> None:
        clean = {m: c for m, c in terms.items() if c != 0}
        object.__setattr__(
            self,
            "_terms",
            tuple(
                sorted(
                    clean.items(),
                    key=lambda kv: [(_atom_key(a), e) for a, e in kv[0]],
                )
            ),
        )
        object.__setattr__(self, "_hash", hash(self._terms))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SymDim is immutable")

    # ---- constructors ----------------------------------------------------
    @staticmethod
    def const(value: Number) -> "SymDim":
        return SymDim({(): Fraction(value)})

    @staticmethod
    def sym(name: str) -> "SymDim":
        if not name.isidentifier():
            raise SymDimError(f"bad symbol name {name!r}")
        return SymDim({((name, 1),): Fraction(1)})

    @staticmethod
    def _coerce(value: "DimLike") -> "SymDim":
        if isinstance(value, SymDim):
            return value
        if isinstance(value, (int, Fraction)):
            return SymDim.const(value)
        raise SymDimError(f"cannot coerce {value!r} to a dimension")

    # ---- inspection ------------------------------------------------------
    @property
    def terms(self) -> Tuple[Tuple[Monomial, Fraction], ...]:
        return self._terms

    def is_const(self) -> bool:
        return all(mono == () for mono, _ in self._terms)

    def as_const(self) -> Optional[Fraction]:
        if not self._terms:
            return Fraction(0)
        if self.is_const():
            return self._terms[0][1]
        return None

    def free_symbols(self) -> frozenset:
        names = set()
        for mono, _ in self._terms:
            for atom, _exp in mono:
                if isinstance(atom, str):
                    names.add(atom)
                else:
                    names |= atom.num.free_symbols()
                    names |= atom.den.free_symbols()
        return frozenset(names)

    def degree_in(self, name: str) -> int:
        """Max exponent of ``name`` over all monomials (asymptotic degree).

        Division atoms contribute the degree of their *numerator* (scaled
        by the atom's exponent); the denominator is ignored, which keeps
        the measure conservative: ``ceildiv(H, M) * M`` reports degree 1
        in both ``H`` and ``M`` even though the product is ~``H``.
        """
        best = 0
        for mono, _ in self._terms:
            total = 0
            for atom, exp in mono:
                if isinstance(atom, str):
                    if atom == name:
                        total += exp
                else:
                    total += exp * atom.num.degree_in(name)
            best = max(best, total)
        return best

    def linear_in(self, name: str) -> Optional[Tuple[Fraction, "SymDim"]]:
        """``(a, b)`` with ``self == a * name + b`` when the dimension is
        affine in ``name`` (and ``name`` appears in no division atom)."""
        coeff = Fraction(0)
        rest: Dict[Monomial, Fraction] = {}
        for mono, c in self._terms:
            uses = [
                (atom, exp)
                for atom, exp in mono
                if (isinstance(atom, str) and atom == name)
                or (isinstance(atom, _DivAtom) and name in atom.num.free_symbols())
                or (isinstance(atom, _DivAtom) and name in atom.den.free_symbols())
            ]
            if not uses:
                rest[mono] = c
                continue
            if mono == ((name, 1),):
                coeff += c
            else:
                return None
        if coeff == 0:
            return None
        return coeff, SymDim(rest)

    # ---- arithmetic ------------------------------------------------------
    def __add__(self, other: "DimLike") -> "SymDim":
        other = SymDim._coerce(other)
        out: Dict[Monomial, Fraction] = dict(self._terms)
        for mono, c in other._terms:
            out[mono] = out.get(mono, Fraction(0)) + c
        return SymDim(out)

    __radd__ = __add__

    def __neg__(self) -> "SymDim":
        return SymDim({mono: -c for mono, c in self._terms})

    def __sub__(self, other: "DimLike") -> "SymDim":
        return self + (-SymDim._coerce(other))

    def __rsub__(self, other: "DimLike") -> "SymDim":
        return SymDim._coerce(other) + (-self)

    def __mul__(self, other: "DimLike") -> "SymDim":
        other = SymDim._coerce(other)
        out: Dict[Monomial, Fraction] = {}
        for mono_a, ca in self._terms:
            for mono_b, cb in other._terms:
                merged: Dict[Atom, int] = {}
                for atom, exp in mono_a + mono_b:
                    merged[atom] = merged.get(atom, 0) + exp
                mono = tuple(
                    sorted(merged.items(), key=lambda kv: _atom_key(kv[0]))
                )
                out[mono] = out.get(mono, Fraction(0)) + ca * cb
        return SymDim(out)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "SymDim":
        if not isinstance(exponent, int) or exponent < 0:
            raise SymDimError(f"exponent must be a non-negative int: {exponent!r}")
        out = SymDim.const(1)
        for _ in range(exponent):
            out = out * self
        return out

    def exact_div(self, other: "DimLike") -> Optional["SymDim"]:
        """``self / other`` when the quotient stays a polynomial, else None."""
        other = SymDim._coerce(other)
        const = other.as_const()
        if const is not None:
            if const == 0:
                raise ZeroDivisionError("division by zero dimension")
            return SymDim({mono: c / const for mono, c in self._terms})
        if len(other._terms) != 1:
            return None
        (dmono, dcoeff), = other._terms
        out: Dict[Monomial, Fraction] = {}
        for mono, c in self._terms:
            have = dict(mono)
            for atom, exp in dmono:
                if have.get(atom, 0) < exp:
                    return None
                have[atom] -= exp
            new = tuple(
                sorted(
                    ((a, e) for a, e in have.items() if e),
                    key=lambda kv: _atom_key(kv[0]),
                )
            )
            out[new] = out.get(new, Fraction(0)) + c / dcoeff
        return SymDim(out)

    def __truediv__(self, other: "DimLike") -> "SymDim":
        result = self.exact_div(other)
        if result is None:
            raise SymDimError(
                f"inexact division {self} / {SymDim._coerce(other)}; use "
                "floordiv()/ceildiv() for integer division"
            )
        return result

    # ---- evaluation ------------------------------------------------------
    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Exact value under a concrete symbol assignment."""
        total = Fraction(0)
        for mono, c in self._terms:
            value = c
            for atom, exp in mono:
                value *= Fraction(_atom_value(atom, env)) ** exp
            total += value
        return total

    def evaluate_int(self, env: Mapping[str, Number]) -> int:
        value = self.evaluate(env)
        if value.denominator != 1:
            raise SymDimError(f"{self} evaluates to non-integer {value}")
        return int(value)

    def subs(self, env: Mapping[str, Union["SymDim", Number]]) -> "SymDim":
        """Partially substitute symbols with values or other dims."""
        out = SymDim.const(0)
        for mono, c in self._terms:
            term = SymDim.const(c)
            for atom, exp in mono:
                term = term * (_atom_subs(atom, env) ** exp)
            out = out + term
        return out

    # ---- equality / display ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = SymDim.const(other)
        if not isinstance(other, SymDim):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"SymDim({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        # render symbolic terms first, the constant term last
        ordered = sorted(self._terms, key=lambda kv: kv[0] == ())
        out = ""
        for mono, c in ordered:
            factors = []
            if abs(c) != 1 or not mono:
                factors.append(str(abs(c)))
            for atom, exp in mono:
                text = atom if isinstance(atom, str) else repr(atom)
                factors.append(text if exp == 1 else f"{text}**{exp}")
            term = "*".join(factors)
            if not out:
                out = term if c >= 0 else f"-{term}"
            else:
                out += f" + {term}" if c >= 0 else f" - {term}"
        return out


DimLike = Union[SymDim, int, Fraction]


def _atom_value(atom: Atom, env: Mapping[str, Number]) -> Number:
    if isinstance(atom, str):
        if atom not in env:
            raise SymDimError(f"unbound symbol {atom!r}")
        return env[atom]
    num = atom.num.evaluate(env)
    den = atom.den.evaluate(env)
    if den == 0:
        raise ZeroDivisionError(f"{atom!r} divides by zero")
    return math.ceil(num / den) if atom.ceil else math.floor(num / den)


def _atom_subs(atom: Atom, env: Mapping[str, Union["SymDim", Number]]) -> SymDim:
    if isinstance(atom, str):
        if atom in env:
            return SymDim._coerce(env[atom])
        return SymDim.sym(atom)
    num = atom.num.subs(env)
    den = atom.den.subs(env)
    return _make_div(num, den, atom.ceil)


def _make_div(num: SymDim, den: SymDim, ceil: bool) -> SymDim:
    den_const = den.as_const()
    if den_const is not None and den_const == 1:
        return num
    exact = num.exact_div(den)
    if exact is not None and all(
        c.denominator == 1 for _, c in exact.terms
    ):
        return exact
    num_const, den_c = num.as_const(), den.as_const()
    if num_const is not None and den_c is not None:
        ratio = num_const / den_c
        return SymDim.const(math.ceil(ratio) if ceil else math.floor(ratio))
    return SymDim({((_DivAtom(num, den, ceil), 1),): Fraction(1)})


def floordiv(num: DimLike, den: DimLike) -> SymDim:
    """``num // den`` with exact-quotient simplification."""
    return _make_div(SymDim._coerce(num), SymDim._coerce(den), ceil=False)


def ceildiv(num: DimLike, den: DimLike) -> SymDim:
    """``ceil(num / den)`` with exact-quotient simplification."""
    return _make_div(SymDim._coerce(num), SymDim._coerce(den), ceil=True)


def sym(name: str) -> SymDim:
    return SymDim.sym(name)


def const(value: Number) -> SymDim:
    return SymDim.const(value)


# ---- parsing ----------------------------------------------------------------

#: Call names accepted inside dimension expressions.
_PARSE_CALLS = {"ceil", "ceildiv", "floordiv"}


def parse_dim(text: str) -> SymDim:
    """Parse a dimension expression: symbols, integers, ``+ - * **``,
    ``//`` (floor), ``/`` (exact), ``ceildiv(a, b)``/``floordiv(a, b)``
    and ``ceil(a / b)``."""
    try:
        node = ast.parse(text.strip(), mode="eval").body
    except SyntaxError as exc:
        raise SymDimError(f"cannot parse dimension {text!r}: {exc.msg}") from exc
    return _fold(node, text)


def _fold(node: ast.expr, text: str) -> SymDim:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return SymDim.const(node.value)
        raise SymDimError(f"non-integer literal in dimension {text!r}")
    if isinstance(node, ast.Name):
        return SymDim.sym(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_fold(node.operand, text)
    if isinstance(node, ast.BinOp):
        left = _fold(node.left, text)
        right = _fold(node.right, text)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv):
            return floordiv(left, right)
        if isinstance(node.op, ast.Div):
            return left / right
        if isinstance(node.op, ast.Pow):
            exponent = right.as_const()
            if exponent is None or exponent.denominator != 1 or exponent < 0:
                raise SymDimError(f"unsupported exponent in {text!r}")
            return left ** int(exponent)
        raise SymDimError(f"unsupported operator in dimension {text!r}")
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name not in _PARSE_CALLS or node.keywords:
            raise SymDimError(f"unsupported call {name!r} in dimension {text!r}")
        if name == "ceil":
            if len(node.args) != 1 or not (
                isinstance(node.args[0], ast.BinOp)
                and isinstance(node.args[0].op, ast.Div)
            ):
                raise SymDimError(f"ceil() needs a single a / b argument in {text!r}")
            inner = node.args[0]
            return ceildiv(_fold(inner.left, text), _fold(inner.right, text))
        if len(node.args) != 2:
            raise SymDimError(f"{name}() needs two arguments in {text!r}")
        left = _fold(node.args[0], text)
        right = _fold(node.args[1], text)
        return ceildiv(left, right) if name == "ceildiv" else floordiv(left, right)
    raise SymDimError(f"unsupported syntax in dimension {text!r}")


def sum_dims(dims: Iterable[DimLike]) -> SymDim:
    total = SymDim.const(0)
    for dim in dims:
        total = total + SymDim._coerce(dim)
    return total
