"""Shared contract registry for the SHAPE and COST analyses.

Both the symbolic shape interpreter (``shapes.py``, SHAPE002) and the
symbolic cost interpreter (``costs/``, COST001–COST005) resolve call
sites against the contracts declared across the *whole* enclosing
package.  This module is the single builder they share: every file is
parsed and scanned exactly once per statcheck run (mtime/size-keyed
cache) and one :class:`ContractDef` per decorator carries the parsed
``@shaped``/``@partitioned`` contract *and* the function's ``@cost``
annotation, so the two analyses are guaranteed to see identical
registries (there is a regression test asserting exactly that).

Nothing here imports analyzed code — collection is pure AST.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..contracts import (
    ContractSyntaxError,
    CostContract,
    PartitionContract,
    ShapeContract,
    TILE_GEOMETRY,
    parse_cost,
    parse_spec,
)


@dataclass
class ContractDef:
    """One ``@shaped``/``@partitioned``/``@cost`` definition in a file."""

    name: str
    qualname: str
    params: Tuple[str, ...]  # positional params, ``self``/``cls`` dropped
    node: ast.AST  # the FunctionDef (only meaningful for the current file)
    decorator: ast.AST
    contract: Optional[ShapeContract] = None
    partition: Optional[PartitionContract] = None
    error: Optional[str] = None
    has_varargs: bool = False
    cost: Optional[CostContract] = None
    cost_error: Optional[str] = None
    cost_decorator: Optional[ast.AST] = None
    decorators: Tuple[str, ...] = ()


def _decorator_name(dec: ast.expr) -> Optional[str]:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _positional_param_names(fn: ast.FunctionDef) -> Tuple[Tuple[str, ...], bool]:
    names = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    has_varargs = fn.args.vararg is not None or fn.args.kwarg is not None
    return tuple(names), has_varargs


#: Names resolvable inside ``@cost`` keyword values (string constants).
_COST_STR_CONSTANTS = {"TILE_GEOMETRY": TILE_GEOMETRY}


def _literal_str(node: ast.expr) -> Optional[str]:
    """A string-valued decorator argument: literal, a known constant
    (``TILE_GEOMETRY``), or ``+``-concatenations of those."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return _COST_STR_CONSTANTS.get(node.id)
    if isinstance(node, ast.Attribute):
        return _COST_STR_CONSTANTS.get(node.attr)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _literal_str(node.left)
        right = _literal_str(node.right)
        if left is not None and right is not None:
            return left + right
    return None


def _parse_cost_decorator(dec: ast.expr) -> Tuple[Optional[CostContract], Optional[str]]:
    """Statically evaluate an ``@cost(...)`` decorator's keywords."""
    if not isinstance(dec, ast.Call):
        return None, "@cost needs keyword arguments"
    if dec.args:
        return None, "@cost takes keyword arguments only"
    kwargs: Dict[str, object] = {}
    for kw in dec.keywords:
        if kw.arg is None:
            return None, "@cost does not accept **kwargs"
        if kw.arg == "assume":
            if not (isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, bool)):
                return None, "@cost assume= needs a literal bool"
            kwargs["assume"] = kw.value.value
            continue
        text = _literal_str(kw.value)
        if text is None:
            return None, (
                f"@cost {kw.arg}= needs a literal string "
                f"(or TILE_GEOMETRY [+ literal])"
            )
        kwargs[kw.arg] = text
    try:
        return parse_cost(**kwargs), None
    except (ContractSyntaxError, TypeError) as exc:
        return None, str(exc)


def collect_contracts(tree: ast.Module) -> List[ContractDef]:
    """Every contracted function definition in a parsed module."""
    defs: List[ContractDef] = []

    def visit(node: ast.AST, class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _collect_one(child, class_name)
                visit(child, None)
            elif isinstance(child, (ast.If, ast.Try)):
                visit(child, class_name)

    def _collect_one(fn: ast.FunctionDef, class_name: Optional[str]) -> None:
        dec_names = tuple(
            name for name in map(_decorator_name, fn.decorator_list)
            if name is not None
        )
        cost_contract: Optional[CostContract] = None
        cost_error: Optional[str] = None
        cost_dec: Optional[ast.AST] = None
        for dec in fn.decorator_list:
            if _decorator_name(dec) == "cost":
                cost_dec = dec
                cost_contract, cost_error = _parse_cost_decorator(dec)
                break
        emitted = False
        for dec in fn.decorator_list:
            kind = _decorator_name(dec)
            if kind not in ("shaped", "partitioned"):
                continue
            params, has_varargs = _positional_param_names(fn)
            qual = f"{class_name}.{fn.name}" if class_name else fn.name
            info = ContractDef(
                name=fn.name, qualname=qual, params=params, node=fn,
                decorator=dec, has_varargs=has_varargs,
                cost=cost_contract, cost_error=cost_error,
                cost_decorator=cost_dec, decorators=dec_names,
            )
            if kind == "shaped":
                spec = None
                if isinstance(dec, ast.Call) and dec.args and isinstance(
                    dec.args[0], ast.Constant
                ) and isinstance(dec.args[0].value, str):
                    spec = dec.args[0].value
                if spec is None:
                    info.error = "@shaped needs a literal string spec"
                else:
                    try:
                        info.contract = parse_spec(spec)
                    except ContractSyntaxError as exc:
                        info.error = str(exc)
            else:
                kw = {
                    k.arg: k.value.value
                    for k in (dec.keywords if isinstance(dec, ast.Call) else [])
                    if k.arg and isinstance(k.value, ast.Constant)
                }
                if "domain" not in kw or "parts" not in kw:
                    info.error = "@partitioned needs domain=/parts= literals"
                else:
                    info.partition = PartitionContract(
                        domain=kw["domain"], parts=kw["parts"]
                    )
            defs.append(info)
            emitted = True
        if cost_dec is not None and not emitted:
            # @cost without @shaped/@partitioned: emitted so the COST
            # rules can report it (the cost interpreter needs a shape
            # contract to bind symbols), but invisible to call resolution.
            params, has_varargs = _positional_param_names(fn)
            qual = f"{class_name}.{fn.name}" if class_name else fn.name
            defs.append(ContractDef(
                name=fn.name, qualname=qual, params=params, node=fn,
                decorator=cost_dec, has_varargs=has_varargs,
                cost=cost_contract, cost_error=cost_error,
                cost_decorator=cost_dec, decorators=dec_names,
            ))

    visit(tree, None)
    return defs


# ---------------------------------------------------------------------------
# cross-file contract registry
# ---------------------------------------------------------------------------

#: Marker for a bare name defined with >1 distinct contract.
AMBIGUOUS = object()

_FILE_CACHE: Dict[str, Tuple[Tuple[int, int], List[ContractDef]]] = {}


def _package_root(path: Path) -> Optional[Path]:
    parent = path.resolve().parent
    if not (parent / "__init__.py").is_file():
        return None
    while (parent.parent / "__init__.py").is_file():
        parent = parent.parent
    return parent


def _file_contracts(path: Path) -> List[ContractDef]:
    try:
        stat = path.stat()
        key = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return []
    cached = _FILE_CACHE.get(str(path))
    if cached is not None and cached[0] == key:
        return cached[1]
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        defs: List[ContractDef] = []
    else:
        defs = collect_contracts(tree)
    _FILE_CACHE[str(path)] = (key, defs)
    return defs


def build_resolution(defs: Iterable[ContractDef]) -> Dict[str, object]:
    """Map callable names to their (unambiguous) contract definitions.

    Both the bare function name and ``Class.method`` are registered; a
    bare name carrying two *different* specs becomes :data:`AMBIGUOUS`
    and is skipped at call sites.
    """
    table: Dict[str, object] = {}
    for info in defs:
        if info.error is not None or (
            info.contract is None and info.partition is None
        ):
            continue
        for key in dict.fromkeys((info.name, info.qualname)):
            prior = table.get(key)
            if prior is None:
                table[key] = info
            elif prior is not AMBIGUOUS and not _same_contract(prior, info):
                table[key] = AMBIGUOUS
    return table


def _same_contract(a: ContractDef, b: ContractDef) -> bool:
    spec_a = a.contract.spec if a.contract else None
    spec_b = b.contract.spec if b.contract else None
    return spec_a == spec_b and a.partition == b.partition and a.cost == b.cost


def registry_for(path: str, tree: ast.Module) -> Dict[str, object]:
    """The name-resolution table for one analyzed file.

    Real files inside a package see every contract of the whole package
    (collected by walking the package root); loose files and inline
    ``<string>`` sources see only their own definitions.
    """
    own = collect_contracts(tree)
    candidate = Path(path)
    if not candidate.is_file():
        return build_resolution(own)
    root = _package_root(candidate)
    if root is None:
        return build_resolution(own)
    from .engine import EXCLUDED_DIRS

    defs: List[ContractDef] = []
    for file in sorted(root.rglob("*.py")):
        if any(
            part in EXCLUDED_DIRS or part.endswith(".egg-info")
            for part in file.parts
        ):
            continue
        if file.resolve() == candidate.resolve():
            defs.extend(own)
        else:
            defs.extend(_file_contracts(file))
    return build_resolution(defs)
