"""AST walker, rule registry and the file/tree entry points."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from .findings import Finding, Severity, sort_findings
from .suppress import SuppressionIndex

#: Directory names never descended into when walking a tree.
EXCLUDED_DIRS = {
    ".git",
    "__pycache__",
    ".egg-info",
    "repro.egg-info",
    ".venv",
    "build",
    "dist",
    ".mypy_cache",
    ".ruff_cache",
}


@dataclass
class Context:
    """Everything a rule gets to see about one file.

    ``cache`` is shared by all rules on the same file so expensive
    analyses (the dimension-inference pass) run once even when several
    rules consume their results.
    """

    path: str
    source: str
    tree: ast.Module
    cache: Dict[str, Any] = field(default_factory=dict)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        return Finding(
            rule=rule.id,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=severity,
        )


class Rule:
    """Base class: subclasses set ``id``/``name``/``description`` and
    implement :meth:`check`."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: Context) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator adding one rule instance to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls!r} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, importing the built-in rule modules on first
    use (registration happens at import time)."""
    from . import rules  # noqa: F401  (imported for registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _selected_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = set(select)
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        rules = [r for r in rules if r.id in wanted]
    if ignore:
        rules = [r for r in rules if r.id not in set(ignore)]
    return rules


def check_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over one source string."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="SYNT001",
                message=f"file does not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    ctx = Context(path=path, source=source, tree=tree)
    findings: List[Finding] = []
    for rule in _selected_rules(select, ignore):
        findings.extend(rule.check(ctx))
    return sort_findings(SuppressionIndex(source, tree=tree).apply(findings))


def check_file(
    path: Path,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return check_source(source, path=str(path), select=select, ignore=ignore)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(
                p
                for p in entry.rglob("*.py")
                if not any(
                    part in EXCLUDED_DIRS or part.endswith(".egg-info")
                    for part in p.parts
                )
            )
        elif entry.suffix == ".py":
            candidates = [entry]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def check_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the suite over files and directory trees."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, select=select, ignore=ignore))
    return sort_findings(findings)
