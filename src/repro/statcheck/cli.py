"""``python -m repro.statcheck [paths]`` — run the suite from a shell.

Exit status: 0 when clean, 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from .engine import all_rules, check_paths
from .findings import render_json, render_text


def _default_paths() -> List[Path]:
    """Lint the installed ``repro`` package when no path is given."""
    return [Path(__file__).resolve().parents[1]]


def _git(args: List[str], cwd: Optional[Path] = None) -> str:
    return subprocess.run(
        ["git", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def changed_python_files(base: Optional[str] = None) -> List[Path]:
    """Python files changed relative to ``base`` (plus untracked ones).

    ``base`` defaults to the first of ``origin/main``, ``origin/master``,
    ``main``, ``master`` that resolves.  Deleted files are excluded, and
    paths are returned absolute so the caller's cwd does not matter.

    Raises ``RuntimeError`` outside a git work tree or when ``base``
    does not resolve to a commit.
    """
    try:
        root = Path(_git(["rev-parse", "--show-toplevel"]).strip())
    except (subprocess.CalledProcessError, OSError) as exc:
        raise RuntimeError("--changed requires a git work tree") from exc
    candidates = [base] if base else ["origin/main", "origin/master", "main", "master"]
    ref = None
    for candidate in candidates:
        try:
            _git(["rev-parse", "--verify", "--quiet", f"{candidate}^{{commit}}"], cwd=root)
        except subprocess.CalledProcessError:
            continue
        ref = candidate
        break
    if ref is None:
        raise RuntimeError(
            f"no base ref found (tried {', '.join(candidates)}); pass --base REF"
        )
    listed = _git(
        ["diff", "--name-only", "--diff-filter=d", ref, "--"], cwd=root
    ).splitlines()
    listed += _git(
        ["ls-files", "--others", "--exclude-standard"], cwd=root
    ).splitlines()
    files = []
    for name in dict.fromkeys(listed):
        path = root / name
        if path.suffix == ".py" and path.exists():
            files.append(path)
    return files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.statcheck",
        description=(
            "Repo-specific static analysis: unit-dimension, determinism "
            "and config-invariant lints for the MPT reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--rules",
        default="",
        metavar="IDS",
        help=(
            "comma-separated rule ids or family prefixes to run "
            "(`--rules EFF001,COMM001` or `--rules EFF,SHAPE`); "
            "combines with --select as a union"
        ),
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help=(
            "emit the interprocedural effect summaries (JSON, one entry "
            "per function under the given paths) instead of findings"
        ),
    )
    parser.add_argument(
        "--costs",
        action="store_true",
        help=(
            "emit the symbolic cost report (JSON, one entry per "
            "@cost-annotated function: declared vs derived polynomials "
            "and asymptotic signatures) instead of findings"
        ),
    )
    parser.add_argument(
        "--update-cost-baseline",
        action="store_true",
        help=(
            "regenerate the COST003 complexity baseline "
            "(statcheck/costs/baseline.json) from the current "
            "annotations and exit"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "check only .py files changed vs the base ref (git diff + "
            "untracked) instead of whole trees"
        ),
    )
    parser.add_argument(
        "--base",
        default=None,
        metavar="REF",
        help=(
            "base ref for --changed (default: first of origin/main, "
            "origin/master, main, master that exists)"
        ),
    )
    return parser


def _split_ids(raw: str) -> Optional[List[str]]:
    ids = [token.strip() for token in raw.split(",") if token.strip()]
    return ids or None


def _expand_rule_tokens(raw: str) -> Optional[List[str]]:
    """Expand ``--rules`` tokens (exact ids or alphabetic family
    prefixes like ``EFF``) against the catalogue.

    Raises ``ValueError`` for a token matching nothing.
    """
    tokens = _split_ids(raw)
    if tokens is None:
        return None
    catalogue = [rule.id for rule in all_rules()]
    expanded: List[str] = []
    for token in tokens:
        if token in catalogue:
            expanded.append(token)
            continue
        family = [rid for rid in catalogue if token.isalpha()
                  and rid.rstrip("0123456789") == token]
        if not family:
            raise ValueError(f"unknown rule or family: {token!r}")
        expanded.extend(family)
    return expanded


def _effects_report(paths: List[Path]) -> str:
    """Per-function effect summaries (JSON) for every ``.py`` file under
    ``paths``, one package analysis per touched package."""
    import json

    from .effects import analyze_path
    from .engine import iter_python_files

    requested = [Path(p).resolve() for p in paths]

    def wanted(function_path: str) -> bool:
        fp = Path(function_path)
        for req in requested:
            if fp == req or req in fp.parents:
                return True
        return False

    analyses = {}
    for file in iter_python_files(paths):
        analysis = analyze_path(Path(file))
        analyses[analysis.root or str(Path(file).resolve())] = analysis
    packages = []
    functions = []
    for root in sorted(analyses):
        analysis = analyses[root]
        packages.append({"root": root, "stats": analysis.stats})
        functions.extend(
            summary.to_json()
            for key in sorted(analysis.summaries)
            for summary in (analysis.summaries[key],)
            if wanted(summary.path)
        )
    return json.dumps(
        {"version": 1, "packages": packages, "functions": functions},
        indent=2,
        sort_keys=True,
    )


def _costs_report(paths: List[Path]) -> str:
    """Per-function declared/derived cost polynomials (JSON) for every
    ``@cost``-annotated function under ``paths``."""
    import ast
    import json

    from .costs.interp import CostPass, cost_signature
    from .engine import iter_python_files

    functions = []
    events = []
    for file in iter_python_files(paths):
        path = Path(file)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            continue
        cost_pass = CostPass(str(path), tree)
        shown = str(path)
        seen = set()
        for info in cost_pass.defs:
            if info.cost_decorator is None or info.qualname in seen:
                continue
            seen.add(info.qualname)
            entry = {
                "path": shown,
                "qualname": info.qualname,
                "line": info.cost_decorator.lineno,
            }
            cc = info.cost
            if cc is None:
                entry["error"] = info.cost_error
                functions.append(entry)
                continue
            entry["assume"] = cc.assume
            declared = {
                label: str(cc.closed(expr))
                for label, expr in (
                    ("flops", cc.flops), ("mem", cc.mem), ("ret", cc.ret),
                    ("ret_len", cc.ret_len),
                )
                if expr is not None
            }
            if cc.ret_sum is not None:
                declared["ret_sum"] = [
                    None if expr is None else str(cc.closed(expr))
                    for expr in cc.ret_sum
                ]
            entry["declared"] = declared
            entry["signature"] = cost_signature(cc)
            derived = cost_pass.derived.get(info.qualname)
            if derived is not None:
                wenv = cc.where_env()
                entry["derived"] = {
                    "flops": str(derived.flops.subs(wenv)),
                    "mem": str(derived.mem.subs(wenv)),
                }
            functions.append(entry)
        events.extend(
            {
                "rule": rule,
                "path": shown,
                "line": getattr(node, "lineno", 0),
                "message": message,
            }
            for rule, node, message in cost_pass.events
        )
    return json.dumps(
        {"version": 1, "functions": functions, "events": events},
        indent=2,
        sort_keys=True,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.description}")
        return 0
    if args.update_cost_baseline:
        from .costs.baseline import write_baseline

        target = write_baseline(_default_paths()[0])
        print(f"statcheck: wrote {target}")
        return 0
    if args.base and not args.changed:
        print("statcheck: --base only makes sense with --changed", file=sys.stderr)
        return 2
    if args.changed:
        if args.paths:
            print("statcheck: --changed and explicit paths are exclusive",
                  file=sys.stderr)
            return 2
        try:
            paths = changed_python_files(args.base)
        except RuntimeError as exc:
            print(f"statcheck: {exc}", file=sys.stderr)
            return 2
        if not paths:
            if args.effects:
                print(_effects_report([]))
            elif args.costs:
                print(_costs_report([]))
            else:
                print(render_json([]) if args.json else render_text([]))
            return 0
    else:
        paths = args.paths or _default_paths()
    missing = [str(p) for p in paths if not Path(p).exists()]
    if missing:
        print(f"statcheck: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.effects:
        print(_effects_report(list(paths)))
        return 0
    if args.costs:
        print(_costs_report(list(paths)))
        return 0
    try:
        selected = _split_ids(args.select)
        expanded = _expand_rule_tokens(args.rules)
        if expanded is not None:
            selected = sorted(set(selected or []) | set(expanded))
        findings = check_paths(
            paths, select=selected, ignore=_split_ids(args.ignore)
        )
    except ValueError as exc:
        print(f"statcheck: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
