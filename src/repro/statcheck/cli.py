"""``python -m repro.statcheck [paths]`` — run the suite from a shell.

Exit status: 0 when clean, 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import all_rules, check_paths
from .findings import render_json, render_text


def _default_paths() -> List[Path]:
    """Lint the installed ``repro`` package when no path is given."""
    return [Path(__file__).resolve().parents[1]]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.statcheck",
        description=(
            "Repo-specific static analysis: unit-dimension, determinism "
            "and config-invariant lints for the MPT reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: str) -> Optional[List[str]]:
    ids = [token.strip() for token in raw.split(",") if token.strip()]
    return ids or None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.description}")
        return 0
    paths = args.paths or _default_paths()
    missing = [str(p) for p in paths if not Path(p).exists()]
    if missing:
        print(f"statcheck: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        findings = check_paths(
            paths, select=_split_ids(args.select), ignore=_split_ids(args.ignore)
        )
    except ValueError as exc:
        print(f"statcheck: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
