"""Repo-specific static analysis (``python -m repro.statcheck``).

The whole reproduction is a chain of arithmetic over physical quantities
(``*_bytes``, ``*_seconds``, ``*_flops``, ``*_pj``, ``*_bytes_per_s``)
plus a deterministic event engine.  A single mixed-unit expression or a
nondeterministic tie-break silently corrupts every figure without
failing a numeric test, so this package lints the source tree for three
repo-specific hazard families:

* **Unit dimensions** (``UNIT0xx``) — dimensions are inferred from the
  naming convention and checked across additions, comparisons, returns,
  assignments and keyword arguments.
* **Determinism** (``DET0xx``) — unseeded RNGs, constant-seed fallbacks,
  iteration over unordered sets, ``id()``-based keying, and float
  equality between simulated-time expressions.
* **Config invariants** (``CFG0xx``) — every ``*Config`` dataclass must
  validate its numeric fields, and literal worker-grid constants must
  keep ``num_groups * num_clusters == num_workers``.

Findings can be suppressed per line with ``# statcheck: ignore[RULE]``
or per file with ``# statcheck: ignore-file[RULE]``; see
``docs/statcheck.md`` for the rule catalogue.
"""

from __future__ import annotations

from .engine import (
    Context,
    Rule,
    all_rules,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
)
from .findings import Finding, Severity, render_json, render_text

__all__ = [
    "Context",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "check_file",
    "check_paths",
    "check_source",
    "iter_python_files",
    "render_json",
    "render_text",
]
