"""Finding/severity model and the text/JSON reporters."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail CI (the tier-1 self-run test asserts zero);
    ``WARNING`` is reserved for advisory rules — the built-in families
    all report errors, but the JSON report tallies the two separately.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
        }


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic reporter order: (path, line, rule, col).

    Rule before column so co-located findings group by rule id — the
    order diff-based workflows (``--changed``) compare against.
    """
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.col))


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` row per finding plus a
    summary line (mirrors the familiar compiler-diagnostic shape)."""
    rows = [
        f"{f.location()}: {f.rule} [{f.severity.value}] {f.message}"
        for f in sort_findings(findings)
    ]
    count = len(findings)
    noun = "finding" if count == 1 else "findings"
    rows.append(f"statcheck: {count} {noun}")
    return "\n".join(rows)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (consumed by the benchmark harness to
    track lint drift alongside perf numbers)."""
    payload = {
        "version": 1,
        "count": len(findings),
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "findings": [f.to_dict() for f in sort_findings(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
