"""Symbolic shape & partition abstract interpretation (``SHAPE`` rules).

This module is the analysis backend of the ``SHAPE001``–``SHAPE006``
rule family.  It consumes the ``@shaped``/``@partitioned`` contracts of
:mod:`repro.contracts` *statically*: contracts are collected from every
file of the enclosing package (no imports are performed — pure AST), and
a per-function abstract interpreter propagates symbolic shapes through
assignments and call sites, unifying what a caller passes against what
the callee's contract declares.

Sub-analyses, in the order they run per file:

``SHAPE001``
    Contract well-formedness: the spec parses and its entry count
    matches the function's positional signature.
``SHAPE002``
    Interprocedural propagation: rank/dimension conflicts at call
    sites to contracted functions, return shapes vs the function's own
    contract, and tuple-unpack arity against multi-value contracts.
``SHAPE003``
    Winograd transform conformance: ``np.tensordot`` chains against the
    ``B``/``G``/``A`` coefficient matrices must contract matching axes
    (``B: (T, T)``, ``G: (T, R)``, ``A: (T, M)``) and produce the
    declared output dims — a flipped transpose fails here.
``SHAPE004``
    Tile-geometry arithmetic: classes with ``m``/``r`` fields and the
    standard geometry properties are *executed* over a battery of small
    concrete sizes and re-derived from the paper's formulas
    (``T = m + r - 1``, ``tiles = ceil((H + 2p - r + 1) / m)``, …).
``SHAPE005``
    Partition contracts: pure ``@partitioned`` functions are executed
    over a battery of ``(domain, parts)`` grids — including the
    non-divisible ones dynamic clustering produces — and checked for
    disjointness and exact coverage.
``SHAPE006``
    Collective slice conservation: ``slice_bytes = total // n``-style
    splits silently drop the remainder unless the function computes
    ragged bounds; flagged wherever no remainder handling is visible.

Symbol semantics: a caller's own contract symbols are *rigid* (they
stand for arbitrary sizes); a callee's symbols are instantiated *fresh*
per call site and bind to whatever the caller passes.  A conflict is
reported only when two rigid expressions are forced equal that are not
identically equal — equality is decided by evaluating both sides over a
deterministic battery of integer assignments, so semantically equal
``ceildiv``/``floordiv`` spellings never false-positive.
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..contracts import (
    ArgSpec,
    PartitionContractError,
    ShapeContract,
    validate_partition,
)
from .symdims import SymDim, const

#: One abstract shape: ``None`` = unknown; otherwise a tuple of per-axis
#: dims, each a :class:`SymDim` or ``None`` (unknown axis).
Shape = Optional[Tuple[Optional[SymDim], ...]]

_Event = Tuple[str, ast.AST, str]


# ---------------------------------------------------------------------------
# semantic equality of symbolic dims (polynomial-identity-testing style)
# ---------------------------------------------------------------------------

_SAMPLE_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31)


def dims_equivalent(a: SymDim, b: SymDim) -> bool:
    """Whether two dims agree on every sampled integer assignment.

    Structural equality short-circuits; otherwise both sides are
    evaluated over several deterministic assignments of small primes to
    their free symbols, so different spellings of the same quantity
    (``ceildiv(x, m)`` vs ``floordiv(x + m - 1, m)``) compare equal
    while genuinely different expressions are told apart.
    """
    if a == b:
        return True
    names = sorted(a.free_symbols() | b.free_symbols())
    for shift in range(4):
        env = {
            name: _SAMPLE_PRIMES[(i + shift) % len(_SAMPLE_PRIMES)] + shift
            for i, name in enumerate(names)
        }
        try:
            if a.evaluate(env) != b.evaluate(env):
                return False
        except ZeroDivisionError:
            continue
    return True


# ---------------------------------------------------------------------------
# contract collection & cross-file registry
# ---------------------------------------------------------------------------
#
# Collection and the package-wide resolution table are shared with the
# cost interpreter (``repro.statcheck.costs``) and live in
# ``repro.statcheck.registry`` — one cached builder, one AST parse per
# file per run.  The names are re-exported here because this module is
# the historical home of the machinery (and rules import them from it).

from .registry import (  # noqa: F401  (re-exports)
    AMBIGUOUS,
    ContractDef,
    _decorator_name,
    _package_root,
    build_resolution,
    collect_contracts,
    registry_for,
)


# ---------------------------------------------------------------------------
# the per-file pass
# ---------------------------------------------------------------------------


@dataclass
class ShapeStats:
    """What the pass consumed in one file (used by the propagation test)."""

    contracts_defined: int = 0
    partitions_defined: int = 0
    calls_resolved: int = 0
    dims_unified: int = 0


class ShapePass:
    """Runs every SHAPE sub-analysis over one file; rules filter events."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.events: List[_Event] = []
        self.stats = ShapeStats()
        self._fresh_counter = 0
        self.own_defs = collect_contracts(tree)
        self.registry = registry_for(path, tree)
        self.stats.contracts_defined = sum(
            1 for d in self.own_defs if d.contract is not None
        )
        self.stats.partitions_defined = sum(
            1 for d in self.own_defs if d.partition is not None
        )
        self._check_specs()
        self._interpret_all()
        self._check_transform_conformance()
        self._check_tile_geometry()
        self._check_partitions()
        self._check_slice_conservation()

    # -- SHAPE001 ----------------------------------------------------------
    def _check_specs(self) -> None:
        for info in self.own_defs:
            if info.error is not None:
                self.events.append(
                    ("SHAPE001", info.decorator,
                     f"bad contract on {info.qualname}: {info.error}")
                )
                continue
            if info.contract is not None and not info.has_varargs:
                declared = len(info.contract.args)
                actual = len(info.params)
                if declared != actual:
                    self.events.append(
                        ("SHAPE001", info.decorator,
                         f"contract on {info.qualname} declares {declared} "
                         f"parameter entries but the signature has {actual} "
                         f"positional parameters")
                    )
            if info.partition is not None:
                for param in (info.partition.domain, info.partition.parts):
                    if param not in info.params:
                        self.events.append(
                            ("SHAPE001", info.decorator,
                             f"@partitioned on {info.qualname} names unknown "
                             f"parameter {param!r}")
                        )

    # -- SHAPE002: the abstract interpreter --------------------------------
    def _interpret_all(self) -> None:
        contract_by_node = {
            d.node: d for d in self.own_defs if d.contract is not None
        }

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._interpret_function(
                        child, contract_by_node.get(child)
                    )
                visit(child)

        visit(self.tree)

    def _fresh_prefix(self) -> str:
        self._fresh_counter += 1
        return f"__c{self._fresh_counter}_"

    def _interpret_function(
        self, fn: ast.FunctionDef, own: Optional[ContractDef]
    ) -> None:
        env: Dict[str, Shape] = {}
        scalars: Dict[str, SymDim] = {}
        if own is not None and own.contract is not None:
            for entry, name in zip(own.contract.args, own.params):
                if entry.kind == "array" and not entry.ellipsis:
                    env[name] = tuple(entry.dims)
                elif entry.kind == "scalar" and entry.expr is not None:
                    scalars[name] = entry.expr
        state = _FnState(env=env, scalars=scalars, own=own, pass_=self, fn=fn)
        state.exec_body(fn.body)

    # -- SHAPE003: transform-matrix conformance ----------------------------

    #: Shapes of the Winograd coefficient matrices (cook_toom.py):
    #: ``B`` is ``(T, T)``, ``G`` is ``(T, r)``, ``A`` is ``(T, m)``.
    _MATRIX_DIMS = {"B": ("T", "T"), "G": ("T", "R"), "A": ("T", "M")}

    def _check_transform_conformance(self) -> None:
        for info in self.own_defs:
            if info.contract is None:
                continue
            trailing = _trailing_symbols(info.contract.args, info.params)
            if trailing is None:
                continue
            param, dims = trailing
            if not any(
                isinstance(n, ast.Call) and self._tensordot_matrix(n)
                for n in ast.walk(info.node)
            ):
                continue
            self._trace_tensordots(info, param, dims)

    def _tensordot_matrix(self, call: ast.Call) -> Optional[str]:
        """The B/G/A matrix name if ``call`` is ``np.tensordot(x, *.B, ...)``."""
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "tensordot"):
            return None
        if len(call.args) < 2:
            return None
        matrix = call.args[1]
        if isinstance(matrix, ast.Attribute) and matrix.attr in self._MATRIX_DIMS:
            return matrix.attr
        return None

    @staticmethod
    def _tensordot_axes(call: ast.Call) -> Optional[Tuple[int, int]]:
        axes = None
        if len(call.args) >= 3:
            axes = call.args[2]
        for kw in call.keywords:
            if kw.arg == "axes":
                axes = kw.value
        if not isinstance(axes, (ast.Tuple, ast.List)) or len(axes.elts) != 2:
            return None
        out = []
        for elt in axes.elts:
            if not isinstance(elt, (ast.Tuple, ast.List)) or len(elt.elts) != 1:
                return None
            value = elt.elts[0]
            if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
                value = value.operand
                sign = -1
            else:
                sign = 1
            if not isinstance(value, ast.Constant) or not isinstance(
                value.value, int
            ):
                return None
            out.append(sign * value.value)
        return out[0], out[1]

    def _trace_tensordots(
        self, info: ContractDef, param: str, in_dims: Tuple[str, ...]
    ) -> None:
        trail: Dict[str, Optional[List[str]]] = {param: list(in_dims)}

        def eval_chain(expr: ast.expr) -> Optional[List[str]]:
            if isinstance(expr, ast.Name):
                return trail.get(expr.id)
            if isinstance(expr, ast.Call):
                matrix = self._tensordot_matrix(expr)
                if matrix is None:
                    return None
                current = eval_chain(expr.args[0])
                if current is None:
                    return None
                axes = self._tensordot_axes(expr)
                if axes is None:
                    return None
                a_axis, m_axis = axes
                if a_axis not in (-1, -2) or m_axis not in (0, 1):
                    return None
                if len(current) < -a_axis:
                    return None
                contracted = current[a_axis]
                m_dims = self._MATRIX_DIMS[matrix]
                if contracted != m_dims[m_axis]:
                    self.events.append(
                        ("SHAPE003", expr,
                         f"{info.qualname}: tensordot contracts the "
                         f"{contracted}-axis of the operand against axis "
                         f"{m_axis} of {matrix}, which has size "
                         f"{m_dims[m_axis]} ({matrix} is "
                         f"{m_dims[0]} x {m_dims[1]})")
                    )
                    return None
                result = [d for k, d in enumerate(current)
                          if k != len(current) + a_axis]
                result.append(m_dims[1 - m_axis])
                return result
            return None

        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                value = eval_chain(stmt.value)
                trail[stmt.targets[0].id] = value
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                final = eval_chain(stmt.value)
                if final is None:
                    continue
                out = _output_trailing_symbols(info.contract)
                if out is None:
                    continue
                if list(out) != final:
                    self.events.append(
                        ("SHAPE003", stmt,
                         f"{info.qualname}: transform chain produces "
                         f"trailing dims ({', '.join(final)}) but the "
                         f"contract declares ({', '.join(out)})")
                    )

    # -- SHAPE004: tile-geometry arithmetic --------------------------------

    #: Geometry property names whose values the checker re-derives.
    _GEOM_PROPS = (
        "tile", "out_height", "out_width", "tiles_high", "tiles_wide",
        "tiles_per_image", "padded_height", "padded_width",
    )

    def _check_tile_geometry(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                self._check_geometry_class(node)

    def _check_geometry_class(self, cls: ast.ClassDef) -> None:
        fields = {
            n.target.id
            for n in cls.body
            if isinstance(n, ast.AnnAssign) and isinstance(n.target, ast.Name)
        }
        if not {"m", "r"} <= fields:
            return
        props = {
            n.name: n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name in self._GEOM_PROPS
            and any(_decorator_name(d) == "property" for d in n.decorator_list)
        }
        if not props:
            return
        if not _class_is_pure(cls):
            return
        namespace = _exec_sandbox()
        try:
            exec(  # noqa: S102 — purity-gated geometry class, sandboxed ns
                compile(ast.Module(body=[cls], type_ignores=[]), self.path,
                        "exec"),
                namespace,
            )
            built = namespace[cls.name]
        except Exception:
            return
        failures: Dict[str, str] = {}
        for height in (4, 5, 6, 7, 12, 14, 31, 32):
            for pad in (0, 1, 2):
                for m in (1, 2, 4):
                    for r in (1, 3, 5):
                        kwargs = {"m": m, "r": r}
                        if "height" in fields:
                            kwargs["height"] = height
                        if "width" in fields:
                            kwargs["width"] = height + 1
                        if "pad" in fields:
                            kwargs["pad"] = pad
                        elif pad:
                            continue
                        try:
                            inst = built(**kwargs)
                        except Exception:
                            continue
                        expected = _expected_geometry(
                            height, height + 1,
                            pad if "pad" in fields else 0, m, r,
                        )
                        for prop in props:
                            if prop in failures:
                                continue
                            try:
                                actual = getattr(inst, prop)
                            except Exception:
                                continue
                            if actual != expected[prop]:
                                failures[prop] = (
                                    f"{cls.name}.{prop} = {actual} at "
                                    f"{kwargs}, but the paper's formula "
                                    f"gives {expected[prop]}"
                                )
        for prop, message in failures.items():
            self.events.append(("SHAPE004", props[prop], message))

    # -- SHAPE005: partition disjointness + coverage -----------------------

    _PARTITION_BATTERY = (
        (16, 1), (16, 4), (16, 16), (36, 16), (17, 4), (25, 4), (5, 8),
        (1, 1), (12, 5),
    )

    def _check_partitions(self) -> None:
        for info in self.own_defs:
            if info.partition is None or info.error is not None:
                continue
            if info.partition.domain not in info.params or \
                    info.partition.parts not in info.params:
                continue  # SHAPE001 already reported
            fn = info.node
            impure = _function_impurity(fn)
            if impure is not None:
                self.events.append(
                    ("SHAPE005", fn,
                     f"cannot statically verify @partitioned "
                     f"{info.qualname}: non-whitelisted name {impure!r}; "
                     f"verify by hand and add a pragma with justification")
                )
                continue
            clean = _strip_decorators(fn)
            namespace = _exec_sandbox()
            try:
                exec(  # noqa: S102 — purity-gated partition fn, sandboxed ns
                    compile(
                        ast.fix_missing_locations(
                            ast.Module(body=[clean], type_ignores=[])
                        ),
                        self.path, "exec",
                    ),
                    namespace,
                )
                runner = namespace[fn.name]
            except Exception:
                continue
            for domain, parts in self._PARTITION_BATTERY:
                kwargs = {
                    info.partition.domain: domain,
                    info.partition.parts: parts,
                }
                try:
                    result = runner(**kwargs)
                except Exception:
                    continue  # e.g. the fn validates parts <= domain
                try:
                    validate_partition(
                        result, domain, parts, info.qualname
                    )
                except PartitionContractError as exc:
                    self.events.append(
                        ("SHAPE005", fn,
                         f"partition contract violated for "
                         f"({info.partition.domain}={domain}, "
                         f"{info.partition.parts}={parts}): {exc}")
                    )
                    break

    # -- SHAPE006: collective slice conservation ---------------------------

    _SLICE_TARGET = re.compile(r"slice|chunk|shard|part")
    _SIZE_TARGET = re.compile(r"bytes|elems|elements|size|count")

    def _check_slice_conservation(self) -> None:
        for fn in ast.walk(self.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _has_remainder_handling(fn):
                continue
            for stmt in ast.walk(fn):
                if not isinstance(stmt, ast.Assign):
                    continue
                target = stmt.targets[0] if len(stmt.targets) == 1 else None
                name = target.id if isinstance(target, ast.Name) else None
                if name is None or not (
                    self._SLICE_TARGET.search(name)
                    and self._SIZE_TARGET.search(name)
                ):
                    continue
                floordiv = _find_floordiv_split(stmt.value)
                if floordiv is None:
                    continue
                self.events.append(
                    ("SHAPE006", stmt,
                     f"{name} = {ast.unparse(stmt.value)} drops the "
                     f"division remainder: the slices only sum back to the "
                     f"total when the count divides it exactly; use ragged "
                     f"bounds (round(i * total / n)) or account for the "
                     f"remainder explicitly")
                )


@dataclass
class _FnState:
    """Abstract-interpretation state while walking one function body."""

    env: Dict[str, Shape]
    scalars: Dict[str, SymDim]
    own: Optional[ContractDef]
    pass_: ShapePass
    fn: ast.FunctionDef

    def exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    # -- statements --------------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                self._assign([stmt.target], stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = None
            self._value(stmt.value)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Expr):
            self._value(stmt.value)
        elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With)):
            if isinstance(stmt, ast.For) and isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = None
            if isinstance(stmt, (ast.If, ast.While)):
                self._value(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse if hasattr(stmt, "orelse") else [])
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        # nested function/class defs are visited by the outer walker

    def _assign(
        self, targets: List[ast.expr], value: ast.expr, stmt: ast.stmt
    ) -> None:
        result = self._value(value)
        for target in targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = result[1] if result[0] == "one" else None
            elif isinstance(target, (ast.Tuple, ast.List)):
                names = target.elts
                if result[0] == "many":
                    shapes = result[1]
                    if len(names) != len(shapes):
                        self.pass_.events.append(
                            ("SHAPE002", stmt,
                             f"unpacking {len(names)} values from a call "
                             f"whose contract returns {len(shapes)}")
                        )
                    for i, elt in enumerate(names):
                        if isinstance(elt, ast.Name):
                            self.env[elt.id] = (
                                shapes[i] if i < len(shapes) else None
                            )
                else:
                    for elt in names:
                        if isinstance(elt, ast.Name):
                            self.env[elt.id] = None

    def _return(self, stmt: ast.Return) -> None:
        own = self.own
        if own is None or own.contract is None or stmt.value is None:
            if stmt.value is not None:
                self._value(stmt.value)
            return
        returns = own.contract.returns
        value = stmt.value
        if len(returns) > 1 and isinstance(value, (ast.Tuple, ast.List)):
            if len(value.elts) != len(returns):
                self.pass_.events.append(
                    ("SHAPE002", stmt,
                     f"{own.qualname} returns {len(value.elts)} values but "
                     f"its contract declares {len(returns)}")
                )
            for entry, elt in zip(returns, value.elts):
                kind, shape = self._value(elt)
                if kind == "one":
                    self._check_return_entry(entry, shape, stmt)
            return
        kind, result = self._value(value)
        if kind == "many":
            if len(result) != len(returns):
                self.pass_.events.append(
                    ("SHAPE002", stmt,
                     f"{own.qualname} forwards {len(result)} values from a "
                     f"call but its contract declares {len(returns)}")
                )
            for entry, shape in zip(returns, result):
                self._check_return_entry(entry, shape, stmt)
        elif len(returns) == 1:
            self._check_return_entry(returns[0], result, stmt)

    def _check_return_entry(
        self, entry: ArgSpec, shape: Shape, node: ast.AST
    ) -> None:
        if entry.kind != "array" or shape is None:
            return
        own = self.own.qualname if self.own else "?"
        if entry.ellipsis and len(shape) < len(entry.dims):
            return
        if not entry.ellipsis and len(entry.dims) != len(shape):
            self.pass_.events.append(
                ("SHAPE002", node,
                 f"{own} returns a rank-{len(shape)} value where its "
                 f"contract declares rank {len(entry.dims)} ({entry})")
            )
            return
        dims = entry.dims
        actual = shape[len(shape) - len(dims):] if entry.ellipsis else shape
        for i, (want, got) in enumerate(zip(dims, actual)):
            if want is None or got is None:
                continue
            if not dims_equivalent(want, got):
                self.pass_.events.append(
                    ("SHAPE002", node,
                     f"{own} returns dim {i} = {got} where its contract "
                     f"declares {want}")
                )

    # -- expressions -------------------------------------------------------
    def _value(self, expr: ast.expr) -> Tuple[str, object]:
        """Abstract value: ``("one", Shape)`` or ``("many", [Shape, ...])``."""
        if isinstance(expr, ast.Name):
            return ("one", self.env.get(expr.id))
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.BoolOp,
                             ast.Subscript, ast.Attribute, ast.IfExp)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._value(child)
        return ("one", None)

    def _callee_name(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _scalar_of(self, expr: ast.expr) -> Optional[SymDim]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            return const(expr.value)
        if isinstance(expr, ast.Name):
            return self.scalars.get(expr.id)
        return None

    def _call(self, call: ast.Call) -> Tuple[str, object]:
        # Evaluate every sub-expression exactly once (nested calls to
        # contracted functions must be resolved and counted only here).
        arg_values: List[Tuple[ast.expr, Tuple[str, object]]] = []
        starred = False
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                self._value(arg.value)
                starred = True
            else:
                arg_values.append((arg, self._value(arg)))
        kw_values: Dict[str, Tuple[ast.expr, Tuple[str, object]]] = {}
        double_star = False
        for kw in call.keywords:
            self._value(kw.value)
            if kw.arg is None:
                double_star = True
            else:
                kw_values[kw.arg] = (kw.value, self._value_cached(kw.value))
        if isinstance(call.func, ast.Attribute):
            self._value(call.func.value)
        name = self._callee_name(call.func)
        info = self.pass_.registry.get(name) if name else None
        if info is None or info is AMBIGUOUS:
            return ("one", None)
        assert isinstance(info, ContractDef)
        if info.contract is None or starred or double_star:
            return ("one", None)
        self.pass_.stats.calls_resolved += 1
        return self._unify_call(call, info, arg_values, kw_values)

    def _value_cached(self, expr: ast.expr) -> Tuple[str, object]:
        """Re-read an already-evaluated expression without side effects."""
        if isinstance(expr, ast.Name):
            return ("one", self.env.get(expr.id))
        return ("one", None)

    def _unify_call(
        self,
        call: ast.Call,
        info: ContractDef,
        arg_values: List[Tuple[ast.expr, Tuple[str, object]]],
        kw_values: Dict[str, Tuple[ast.expr, Tuple[str, object]]],
    ) -> Tuple[str, object]:
        contract = info.contract
        prefix = self.pass_._fresh_prefix()
        rename = {
            s: f"{prefix}{s}"
            for entry in (*contract.args, *contract.returns)
            for s in _entry_symbols(entry)
        }
        bindings: Dict[str, SymDim] = {}
        leading: Shape = None

        # pair call-site arguments with contract entries
        pairs: List[Tuple[ArgSpec, ast.expr, Tuple[str, object]]] = []
        for i, (arg, value) in enumerate(arg_values):
            if i < len(contract.args):
                pairs.append((contract.args[i], arg, value))
        for kw_name, (arg, value) in kw_values.items():
            if kw_name in info.params:
                idx = info.params.index(kw_name)
                if idx < len(contract.args):
                    pairs.append((contract.args[idx], arg, value))

        for entry, arg, value in pairs:
            if entry.kind == "skip":
                continue
            if entry.kind == "scalar":
                caller = self._scalar_of(arg)
                if caller is not None and entry.expr is not None:
                    self._unify_dim(
                        entry.expr, caller, rename, bindings, call,
                        f"call to {info.qualname}: argument "
                        f"{ast.unparse(arg)}",
                    )
                continue
            kind, shape = value
            if kind != "one" or shape is None:
                continue
            if entry.ellipsis:
                if len(shape) < len(entry.dims):
                    self.pass_.events.append(
                        ("SHAPE002", call,
                         f"call to {info.qualname}: argument "
                         f"{ast.unparse(arg)} has rank {len(shape)}, "
                         f"contract needs at least {len(entry.dims)} "
                         f"trailing dims ({entry})")
                    )
                    continue
                if leading is None:
                    leading = shape[: len(shape) - len(entry.dims)]
                trailing = shape[len(shape) - len(entry.dims):]
            else:
                if len(shape) != len(entry.dims):
                    self.pass_.events.append(
                        ("SHAPE002", call,
                         f"call to {info.qualname}: argument "
                         f"{ast.unparse(arg)} has rank {len(shape)} but the "
                         f"contract declares rank {len(entry.dims)} "
                         f"({entry})")
                    )
                    continue
                trailing = shape
            for j, (dim, caller_dim) in enumerate(zip(entry.dims, trailing)):
                if dim is None or caller_dim is None:
                    continue
                self._unify_dim(
                    dim, caller_dim, rename, bindings, call,
                    f"call to {info.qualname}: argument "
                    f"{ast.unparse(arg)} dim {j - len(entry.dims)}",
                )

        shapes = [
            self._result_shape(entry, rename, bindings, leading)
            for entry in contract.returns
        ]
        if len(shapes) == 1:
            return ("one", shapes[0])
        return ("many", shapes)

    def _unify_dim(
        self,
        callee_dim: SymDim,
        caller_dim: SymDim,
        rename: Dict[str, str],
        bindings: Dict[str, SymDim],
        node: ast.AST,
        where: str,
    ) -> None:
        fresh = callee_dim.subs(
            {orig: SymDim.sym(new) for orig, new in rename.items()}
        ).subs(bindings)
        free = [s for s in fresh.free_symbols() if s.startswith("__c")]
        if not free:
            if not dims_equivalent(fresh, caller_dim):
                original = _unrename(fresh, rename)
                self.pass_.events.append(
                    ("SHAPE002", node,
                     f"{where}: caller passes {caller_dim} where the "
                     f"contract requires {original}")
                )
            else:
                self.pass_.stats.dims_unified += 1
            return
        if len(free) == 1 and fresh == SymDim.sym(free[0]):
            bindings[free[0]] = caller_dim
            self.pass_.stats.dims_unified += 1
        # composite dims with unbound symbols stay unconstrained

    def _result_shape(
        self,
        entry: ArgSpec,
        rename: Dict[str, str],
        bindings: Dict[str, SymDim],
        leading: Shape,
    ) -> Shape:
        if entry.kind != "array":
            return None
        dims: List[Optional[SymDim]] = []
        for dim in entry.dims:
            if dim is None:
                dims.append(None)
                continue
            fresh = dim.subs(
                {orig: SymDim.sym(new) for orig, new in rename.items()}
            ).subs(bindings)
            if any(s.startswith("__c") for s in fresh.free_symbols()):
                dims.append(None)
            else:
                dims.append(fresh)
        if entry.ellipsis:
            if leading is None:
                return None
            return tuple(leading) + tuple(dims)
        return tuple(dims)


def _entry_symbols(entry: ArgSpec) -> set:
    symbols = set()
    if entry.kind == "scalar" and entry.expr is not None:
        symbols |= entry.expr.free_symbols()
    elif entry.kind == "array":
        for dim in entry.dims:
            if dim is not None:
                symbols |= dim.free_symbols()
    return symbols


def _unrename(dim: SymDim, rename: Dict[str, str]) -> SymDim:
    back = {new: SymDim.sym(orig) for orig, new in rename.items()}
    return dim.subs(back)


# ---------------------------------------------------------------------------
# helpers for the SHAPE003-006 sub-analyses
# ---------------------------------------------------------------------------


def _bare_symbol(dim: Optional[SymDim]) -> Optional[str]:
    if dim is None:
        return None
    free = dim.free_symbols()
    if len(free) == 1:
        (name,) = free
        if dim == SymDim.sym(name):
            return name
    return None


def _trailing_symbols(
    entries: Tuple[ArgSpec, ...], params: Tuple[str, ...]
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """The (param name, trailing dim symbols) of the single data operand
    of a transform method: one ellipsis array entry whose trailing dims
    are all bare ``T``/``R``/``M`` symbols."""
    found = None
    for entry, name in zip(entries, params):
        if entry.kind != "array" or not entry.ellipsis:
            continue
        symbols = tuple(_bare_symbol(d) for d in entry.dims)
        if any(s not in ("T", "R", "M") for s in symbols):
            return None
        if found is not None:
            return None  # more than one candidate operand: ambiguous
        found = (name, symbols)
    return found


def _output_trailing_symbols(
    contract: ShapeContract,
) -> Optional[Tuple[str, ...]]:
    if len(contract.returns) != 1:
        return None
    entry = contract.returns[0]
    if entry.kind != "array" or not entry.ellipsis:
        return None
    symbols = tuple(_bare_symbol(d) for d in entry.dims)
    if any(s not in ("T", "R", "M") for s in symbols):
        return None
    return symbols


def _expected_geometry(
    height: int, width: int, pad: int, m: int, r: int
) -> Dict[str, int]:
    """Independent derivation of every geometry property from the paper's
    formulas (Section II-B / III-A)."""
    tile = m + r - 1
    out_h = height + 2 * pad - r + 1
    out_w = width + 2 * pad - r + 1
    tiles_high = math.ceil(out_h / m)
    tiles_wide = math.ceil(out_w / m)
    return {
        "tile": tile,
        "out_height": out_h,
        "out_width": out_w,
        "tiles_high": tiles_high,
        "tiles_wide": tiles_wide,
        "tiles_per_image": tiles_high * tiles_wide,
        "padded_height": (tiles_high - 1) * m + tile,
        "padded_width": (tiles_wide - 1) * m + tile,
    }


#: Names an exec'd geometry class / partition function may reference.
_PURE_NAMES = frozenset(
    {
        "self", "math", "np", "numpy", "dataclass", "field", "property",
        "cached_property", "range", "len", "list", "tuple", "sorted",
        "min", "max", "sum", "abs", "enumerate", "zip", "divmod", "round",
        "int", "float", "bool", "set", "frozenset", "ValueError",
        "TypeError", "True", "False", "None",
    }
)


def _collect_free_names(node: ast.AST) -> set:
    """Names loaded in ``node`` that are not bound inside it."""
    bound = set()
    loaded = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            if isinstance(child.ctx, ast.Load):
                loaded.add(child.id)
            else:
                bound.add(child.id)
        elif isinstance(child, ast.arg):
            bound.add(child.arg)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
            bound.add(child.name)
        elif isinstance(child, ast.comprehension):
            for target in ast.walk(child.target):
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return loaded - bound


def _class_is_pure(cls: ast.ClassDef) -> bool:
    return _collect_free_names(cls) <= _PURE_NAMES


def _strip_decorators(fn: ast.FunctionDef) -> ast.FunctionDef:
    import copy

    clean = copy.deepcopy(fn)
    clean.decorator_list = []
    clean.returns = None
    return clean


def _function_impurity(fn: ast.FunctionDef) -> Optional[str]:
    """The first non-whitelisted free name of ``fn``, or ``None`` if pure."""
    extra = sorted(_collect_free_names(_strip_decorators(fn)) - _PURE_NAMES)
    return extra[0] if extra else None


def _exec_sandbox() -> Dict[str, object]:
    import dataclasses
    import functools

    namespace: Dict[str, object] = {
        "math": math,
        "dataclass": dataclasses.dataclass,
        "field": dataclasses.field,
        "property": property,
        "cached_property": functools.cached_property,
    }
    try:  # numpy is optional for exec'd partition helpers (np.arange)
        import numpy

        namespace["np"] = namespace["numpy"] = numpy
    except ImportError:
        pass
    return namespace


def _has_remainder_handling(fn: ast.AST) -> bool:
    """Whether a function visibly accounts for a division remainder by
    computing ragged ``round(...)`` bounds.  (A bare ``%`` does not
    count — ring-position arithmetic like ``(pos + 1) % n`` says nothing
    about slice-size conservation.)"""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "round":
            return True
    return False


def _find_floordiv_split(expr: ast.expr) -> Optional[ast.BinOp]:
    """A ``total // n`` at the top of ``expr`` (possibly inside
    ``max(1, ...)``/``min(...)``), where the numerator looks like a
    message/total size."""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("max", "min"):
        for arg in expr.args:
            found = _find_floordiv_split(arg)
            if found is not None:
                return found
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.FloorDiv):
        numerator = ast.unparse(expr.left)
        if re.search(r"bytes|elems|elements|size|total|message", numerator):
            return expr
    return None


# ---------------------------------------------------------------------------
# entry points for the rule classes and the propagation-stats test
# ---------------------------------------------------------------------------


def shape_pass(ctx) -> ShapePass:
    """The per-file pass, computed once and shared by all SHAPE rules."""
    cached = ctx.cache.get("shape_pass")
    if cached is None:
        cached = ctx.cache["shape_pass"] = ShapePass(ctx.path, ctx.tree)
    return cached


def collect_stats(paths: Sequence[Union[str, Path]]) -> Dict[str, ShapeStats]:
    """Run the pass standalone over files/trees; per-file statistics.

    Used by the test asserting that the static pass actually consumes
    contracts in every annotated subsystem.
    """
    from .engine import iter_python_files

    stats: Dict[str, ShapeStats] = {}
    for file in iter_python_files([Path(p) for p in paths]):
        try:
            tree = ast.parse(file.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            continue
        stats[str(file)] = ShapePass(str(file), tree).stats
    return stats
