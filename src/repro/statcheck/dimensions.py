"""Dimension algebra over the repo's naming convention.

A dimension is a sorted tuple of ``(base_unit, exponent)`` pairs — the
empty tuple is a known dimensionless quantity (counts, ratios) and
``None`` means *unknown* (no suffix, no inference).  Scale prefixes are
deliberately ignored: ``_ms`` and ``_s`` share the *second* dimension
(the lint checks dimensions, not magnitudes), and ``bit`` shares the
*byte* dimension.

``clock_hz`` is cycles per second, so ``cycles / hz -> seconds`` and
``bytes_per_s / hz -> bytes_per_cycle`` both fall out of the algebra.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

Dim = Tuple[Tuple[str, int], ...]
MaybeDim = Optional[Dim]

BYTE = "byte"
SECOND = "second"
FLOP = "flop"
CYCLE = "cycle"
JOULE = "joule"

DIMLESS: Dim = ()


def make(**units: int) -> Dim:
    return tuple(sorted((u, e) for u, e in units.items() if e))


def mul(a: MaybeDim, b: MaybeDim) -> MaybeDim:
    if a is None or b is None:
        return None
    combined: Dict[str, int] = dict(a)
    for unit, exp in b:
        combined[unit] = combined.get(unit, 0) + exp
    return tuple(sorted((u, e) for u, e in combined.items() if e))


def div(a: MaybeDim, b: MaybeDim) -> MaybeDim:
    if a is None or b is None:
        return None
    return mul(a, tuple((u, -e) for u, e in b))


def power(base: MaybeDim, exponent: int) -> MaybeDim:
    if base is None:
        return None
    return tuple(sorted((u, e * exponent) for u, e in base if e * exponent))


def conflict(a: MaybeDim, b: MaybeDim) -> bool:
    """Two *unit-bearing* dimensions disagree.  Unknown (``None``) and
    dimensionless quantities are compatible with everything — counts mix
    freely with sized quantities by design (``nbytes * 8``)."""
    return a is not None and b is not None and a != DIMLESS and b != DIMLESS and a != b


def combine_add(a: MaybeDim, b: MaybeDim) -> MaybeDim:
    """Resulting dimension of ``a + b`` (after any conflict was already
    reported): the unit-bearing side wins so sums like ``now + delta_s``
    keep propagating *seconds* through a chain."""
    if a == b:
        return a
    if a is None or a == DIMLESS:
        return b
    if b is None or b == DIMLESS:
        return a
    return None  # conflicting unit-bearing dimensions (reported upstream)


def fmt(dim: MaybeDim) -> str:
    if dim is None:
        return "?"
    if dim == DIMLESS:
        return "dimensionless"
    num = [u if e == 1 else f"{u}^{e}" for u, e in dim if e > 0]
    den = [u if e == -1 else f"{u}^{-e}" for u, e in dim if e < 0]
    if not num:
        num = ["1"]
    return "*".join(num) + ("/" + "/".join(den) if den else "")


#: Name tokens that carry a base dimension (scale prefixes collapse).
TOKEN_UNITS: Dict[str, Dim] = {
    **{t: make(byte=1) for t in (
        "byte", "bytes", "bit", "bits", "kb", "mb", "gb", "kib", "mib", "gib",
    )},
    **{t: make(second=1) for t in (
        "s", "sec", "secs", "second", "seconds", "ms", "us", "ns",
    )},
    **{t: make(flop=1) for t in (
        "flop", "flops", "mflops", "gflops", "tflops", "mac", "macs",
    )},
    **{t: make(cycle=1) for t in ("cycle", "cycles")},
    **{t: make(joule=1) for t in (
        "j", "joule", "joules", "pj", "nj", "uj", "mj",
    )},
    # A frequency is cycles per second, which makes `cycles / hz`
    # come out in seconds.
    **{t: make(cycle=1, second=-1) for t in ("hz", "khz", "mhz", "ghz")},
}

#: Exact-name dimensions that the suffix grammar cannot express — `_w`
#: alone is too ambiguous a suffix (``batch_w`` is a per-worker batch),
#: so idle-power constants are named explicitly.
NAME_OVERRIDES: Dict[str, Dim] = {
    "full_link_idle_w": make(joule=1, second=-1),
    "narrow_link_idle_w": make(joule=1, second=-1),
}


def name_dim(name: Optional[str], allow_bare: bool = True) -> MaybeDim:
    """Dimension carried by an identifier, or ``None``.

    ``x_bytes -> byte``; ``dram_bytes_per_s -> byte/second``;
    ``clock_hz -> cycle/second``; ``images_per_s -> None`` (an unknown
    numerator poisons the whole compound rather than guessing ``1/s``).
    ``allow_bare=False`` requires a multi-token name, which keeps
    single-word identifiers like a ``bits()`` helper out of the
    function-suffix checks while still letting a bare ``BYTES`` constant
    carry its dimension as a variable.
    """
    if not name:
        return None
    lowered = name.lower()
    if lowered in NAME_OVERRIDES:
        return NAME_OVERRIDES[lowered]
    tokens = [t for t in lowered.split("_") if t]
    if not tokens:
        return None
    if len(tokens) >= 3 and tokens[-2] == "per":
        numerator, denominator = tokens[-3], tokens[-1]
        if numerator in TOKEN_UNITS and denominator in TOKEN_UNITS:
            return div(TOKEN_UNITS[numerator], TOKEN_UNITS[denominator])
        return None
    if tokens[-1] in TOKEN_UNITS:
        # A bare name is only unit-bearing when it is unambiguously a
        # unit word (``BYTES``, ``cycle``); one- and two-letter bare
        # names like a loop variable ``j`` or ``ms`` stay unknown.
        if len(tokens) == 1 and (not allow_bare or len(tokens[0]) < 3):
            return None
        return TOKEN_UNITS[tokens[-1]]
    return None


SECONDS: Dim = make(second=1)
