"""Checked-in complexity baseline for COST003.

``baseline.json`` (next to this module) records, for every
``@cost``-annotated function in the package, the asymptotic degree of
each declared quantity in each symbol.  COST003 fires only on
*increases* against this file — an annotation whose declared flops grow
from ``O(T**2)`` to ``O(T**3)`` must regenerate the baseline
deliberately (``python -m repro statcheck --update-cost-baseline``),
which makes complexity-class regressions reviewable in diffs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

_BASELINE_PATH = Path(__file__).parent / "baseline.json"
_cache: Optional[Dict[str, dict]] = None
_cache_key: Optional[tuple] = None


def load_packaged_baseline() -> Optional[Dict[str, dict]]:
    """The ``functions`` table of the packaged baseline, or ``None``."""
    global _cache, _cache_key
    try:
        stat = _BASELINE_PATH.stat()
        key = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return None
    if _cache is not None and _cache_key == key:
        return _cache
    try:
        data = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    _cache = data.get("functions", {})
    _cache_key = key
    return _cache


def compute_baseline(root: Path) -> Dict[str, dict]:
    """The current signature table for every annotated function under
    the package rooted at ``root`` (keys are ``relpath::qualname``)."""
    from ..engine import EXCLUDED_DIRS
    from ..registry import _file_contracts
    from .interp import cost_signature

    functions: Dict[str, dict] = {}
    for path in sorted(root.rglob("*.py")):
        if any(
            part in EXCLUDED_DIRS or part.endswith(".egg-info")
            for part in path.parts
        ):
            continue
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        for info in _file_contracts(path):
            if info.cost is None:
                continue
            key = f"{rel}::{info.qualname}"
            if key in functions:
                continue
            functions[key] = cost_signature(info.cost)
    return functions


def write_baseline(root: Path, out: Optional[Path] = None) -> Path:
    """Regenerate ``baseline.json`` from the package under ``root``."""
    target = out or _BASELINE_PATH
    payload = {"version": 1, "functions": compute_baseline(root)}
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    global _cache, _cache_key
    _cache = _cache_key = None
    return target
