"""Symbolic cost abstract interpreter (COST rule family).

See :mod:`.interp` for the analysis, :mod:`.facts` for the analytical
model it checks against, and :mod:`.baseline` for the COST003
complexity baseline.
"""

from .interp import CostPass, cost_pass, cost_signature  # noqa: F401
from .values import Arr, Fail, Geom, Lst, Obj, Tup, Xform  # noqa: F401
