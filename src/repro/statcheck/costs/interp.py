"""Symbolic cost abstract interpreter (the COST rule family's engine).

For every ``@cost``-annotated kernel the pass walks the function body
and *derives* its FLOP and bytes-moved polynomials over the same
:class:`~..symdims.SymDim` algebra the shape checker uses, then compares
them against the declaration:

* ``for`` loops over ``range(...)`` or summarized lists are evaluated
  symbolically — the body is interpreted once and its cost is summed in
  closed form (affine in the loop variables, with exact triangular sums
  for ``range`` index variables).
* numpy intrinsics get costs from a per-call table (uniform fp32 model:
  4 bytes/element; 2 flops/MAC; stores and array accumulation are
  memory-only, matching :mod:`repro.winograd.costs` which counts only
  transform flops and MACs).
* calls to other annotated functions substitute the callee's *declared*
  (where-closed) polynomials — interprocedural, one summary per callee.
* list-returning helpers annotated ``ret_len=``/``ret_sum=`` are
  verified by executing them (they must be pure) over a battery of
  small inputs instead of derivation.

Anything outside this fragment fails the derivation, and a failed
derivation is itself a COST001 finding: the fragment is the set of
constructs the repo's kernels actually use, and staying inside it is
what keeps the analysis exact rather than approximate.

Events are ``(rule_id, node, message)`` tuples consumed by the thin
rule classes in ``rules/cost_rules.py`` — the same split as the SHAPE
family.
"""

from __future__ import annotations

import ast
import itertools
import json
from fractions import Fraction
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..registry import AMBIGUOUS, ContractDef, collect_contracts, registry_for
from ..shapes import (
    _exec_sandbox,
    _function_impurity,
    _strip_decorators,
    dims_equivalent,
)
from ..symdims import SymDim, SymDimError, ceildiv, floordiv, sym
from . import facts
from .values import (
    NP_SUBMODULES,
    NPMOD,
    ONE,
    ZERO,
    Arr,
    Fail,
    Geom,
    Lst,
    Marker,
    Obj,
    Tup,
    Xform,
    broadcast,
)

_UNSET = object()  # "has not returned yet" (None is a legal return value)

_FOUR = SymDim.const(4)
_HALF = Fraction(1, 2)


def _bare_sym(expr: Optional[SymDim]) -> Optional[str]:
    """The symbol name when ``expr`` is exactly one bare symbol."""
    if expr is None:
        return None
    terms = expr.terms
    if len(terms) != 1:
        return None
    mono, coeff = terms[0]
    if coeff != 1 or len(mono) != 1:
        return None
    atom, exp = mono[0]
    if isinstance(atom, str) and exp == 1:
        return atom
    return None


def _affine_split(
    expr: SymDim, name: str
) -> Tuple[Optional[SymDim], Optional[SymDim]]:
    """``(coeff, rest)`` with ``expr == coeff*name + rest`` and ``rest``
    of degree 0 in ``name`` — or ``(None, None)`` when ``expr`` is not
    affine in ``name`` (degree >= 2, or ``name`` inside a division)."""
    coeff: Dict[tuple, Fraction] = {}
    rest: Dict[tuple, Fraction] = {}
    for mono, c in expr.terms:
        deg = 0
        stripped = []
        for atom, e in mono:
            if isinstance(atom, str):
                if atom == name:
                    deg += e
                    continue
            elif name in atom.num.free_symbols() or name in atom.den.free_symbols():
                return None, None
            stripped.append((atom, e))
        if deg == 0:
            rest[mono] = rest.get(mono, Fraction(0)) + c
        elif deg == 1:
            key = tuple(stripped)  # removing one atom keeps the sort order
            coeff[key] = coeff.get(key, Fraction(0)) + c
        else:
            return None, None
    return SymDim(coeff), SymDim(rest)


def _module_int_env(tree: ast.Module) -> Dict[str, object]:
    """Module-level ``NAME = <int literal>`` constants (``BYTES = 4``)."""
    env: Dict[str, object] = {}
    for st in tree.body:
        target = None
        if isinstance(st, ast.Assign) and len(st.targets) == 1:
            target = st.targets[0]
        elif isinstance(st, ast.AnnAssign):
            target = st.target
        else:
            continue
        if not (isinstance(target, ast.Name) and isinstance(st.value, ast.Constant)):
            continue
        value = st.value.value
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        env[target.id] = SymDim.const(value)
    return env


#: Builtins that are cost-free and whose value we do not track.
_FREE_CALLS = frozenset({
    "min", "max", "abs", "round", "isinstance", "sorted", "print",
    "str", "repr", "id", "phase",
})


def _terminator(body: Sequence[ast.stmt]) -> str:
    if not body:
        return "absent"
    last = body[-1]
    if isinstance(last, (ast.Raise, ast.Continue, ast.Break)):
        return "guard"
    if isinstance(last, ast.Return):
        return "return"
    return "plain"


class _Shared:
    """State shared across a derivation and all its child frames."""

    __slots__ = ("cp", "counter")

    def __init__(self, cp: "CostPass") -> None:
        self.cp = cp
        self.counter = 0

    def fresh(self) -> str:
        self.counter += 1
        return f"__L{self.counter}"


class FnDeriver:
    """One interpretation frame (a function body or a loop body)."""

    def __init__(self, shared: _Shared, env: Dict[str, object]) -> None:
        self.shared = shared
        self.env = env
        self.flops = ZERO
        self.mem = ZERO
        self.ret = _UNSET
        self.stopped = False
        #: scalar ``name += delta`` totals in this frame (None = unknown)
        self.aug: Dict[str, Optional[SymDim]] = {}
        #: names plainly (re)assigned in this frame
        self.assigned: set = set()
        #: (flops, mem, ret) totals of early-``return`` fast paths
        self.alternatives: List[Tuple[SymDim, SymDim, object]] = []

    # ---- statements ------------------------------------------------------

    def run_body(self, body: Sequence[ast.stmt]) -> None:
        for st in body:
            if self.ret is not _UNSET or self.stopped:
                break
            self.stmt(st)

    def stmt(self, st: ast.stmt) -> None:
        if isinstance(st, ast.Assign):
            value = self.eval(st.value)
            for target in st.targets:
                self._assign(target, value)
        elif isinstance(st, ast.AnnAssign):
            if st.value is not None:
                self._assign(st.target, self.eval(st.value))
        elif isinstance(st, ast.AugAssign):
            self._aug_assign(st)
        elif isinstance(st, ast.Expr):
            self.eval(st.value)
        elif isinstance(st, ast.For):
            self._for(st)
        elif isinstance(st, ast.If):
            self._if(st)
        elif isinstance(st, ast.With):
            for item in st.items:
                self.eval(item.context_expr)  # e.g. phase("kernel"): free
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, None)
            self.run_body(st.body)
        elif isinstance(st, ast.Return):
            self.ret = self.eval(st.value) if st.value is not None else None
        elif isinstance(st, ast.Raise):
            self.stopped = True
        elif isinstance(st, (ast.Pass, ast.Assert, ast.Import, ast.ImportFrom)):
            pass
        else:
            raise Fail(f"unsupported statement {type(st).__name__}")

    def _assign(self, target: ast.expr, value: object) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            self.assigned.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            items: Sequence[object]
            if isinstance(value, Tup) and len(value.items) == len(target.elts):
                items = value.items
            elif isinstance(value, Arr) and value.lead is None and len(
                value.dims
            ) == len(target.elts):
                items = [Arr((d,)) if d is not None else None for d in value.dims]
            else:
                items = [None] * len(target.elts)
            for sub, item in zip(target.elts, items):
                self._assign(sub, item)
        elif isinstance(target, ast.Subscript):
            self._store(target)
        elif isinstance(target, ast.Attribute):
            pass  # object-attribute bookkeeping, no array bytes
        elif isinstance(target, ast.Starred):
            raise Fail("starred assignment")
        else:
            raise Fail(f"unsupported assignment target {type(target).__name__}")

    def _store(self, target: ast.Subscript) -> None:
        """A subscript store costs the bytes of the written region."""
        base = self.eval(target.value)
        if not isinstance(base, Arr):
            raise Fail("subscript store into non-array")
        region = self._subscript_arr(base, target.slice)
        size = region.size()
        if size is None:
            raise Fail("subscript store of unknown extent")
        self.mem = self.mem + _FOUR * size

    def _aug_assign(self, st: ast.AugAssign) -> None:
        delta = self.eval(st.value)
        target = st.target
        if isinstance(target, ast.Subscript):
            # array accumulation: memory-only (see module docstring)
            self._store(target)
            return
        if isinstance(target, ast.Attribute):
            return
        if not isinstance(target, ast.Name):
            raise Fail(f"unsupported augment target {type(target).__name__}")
        name = target.id
        cur = self.env.get(name)
        if isinstance(cur, Arr):
            size = cur.size()
            if size is None:
                raise Fail("array accumulation of unknown extent")
            self.mem = self.mem + _FOUR * size
            return
        if (
            isinstance(st.op, ast.Add)
            and isinstance(cur, SymDim)
            and isinstance(delta, SymDim)
        ):
            self.env[name] = cur + delta
            prior = self.aug.get(name, ZERO)
            self.aug[name] = None if prior is None else prior + delta
        else:
            self.env[name] = None
            self.aug[name] = None

    # ---- control flow ----------------------------------------------------

    def _fork(self, body: Sequence[ast.stmt]) -> "FnDeriver":
        child = FnDeriver(self.shared, dict(self.env))
        child.run_body(body)
        return child

    def _if(self, st: ast.If) -> None:
        branches = [
            (st.body, _terminator(st.body)),
            (st.orelse, _terminator(st.orelse)),
        ]
        live = [(b, t) for b, t in branches if t != "guard" and t != "absent"]
        if not live:
            return  # pure guard (raise/continue/break) — skip
        if len(live) == 2 and live[0][1] == "plain" and live[1][1] == "plain":
            # both sides execute in the abstraction: upper bound on cost,
            # merge environments (unused by the repo's annotated kernels)
            forks = [self._fork(b) for b, _ in live]
            for fork in forks:
                if fork.ret is not _UNSET:
                    raise Fail("return in one arm of a two-arm conditional")
                self._absorb_fork_alternatives(fork)
                self.flops = self.flops + fork.flops
                self.mem = self.mem + fork.mem
            touched = set()
            for fork in forks:
                touched |= fork.assigned | set(fork.aug)
            for name in sorted(touched):
                self.env[name] = None
                self.assigned.add(name)
            return
        for body, term in live:
            if term == "return":
                fork = self._fork(body)
                self._absorb_fork_alternatives(fork)
                if fork.ret is _UNSET or fork.stopped:
                    continue
                ret = fork.ret
                if ret is None or (isinstance(ret, SymDim) and ret.is_const()):
                    continue  # edge guard (`return 0`) — not a real path
                self.alternatives.append((
                    self.flops + fork.flops, self.mem + fork.mem, ret,
                ))
            else:  # single live plain branch: adopt it (general path)
                self.run_body(body)

    def _absorb_fork_alternatives(self, fork: "FnDeriver") -> None:
        for alt_f, alt_m, alt_r in fork.alternatives:
            self.alternatives.append((self.flops + alt_f, self.mem + alt_m, alt_r))

    def _for(self, st: ast.For) -> None:
        if st.orelse:
            raise Fail("for/else")
        trip, binds = self._loop_iter(st)
        child = FnDeriver(self.shared, dict(self.env))
        loop_names = []
        for var, fresh, _vsum in binds:
            child.env[var] = sym(fresh)
            loop_names.append(fresh)
        child.run_body(st.body)
        if child.ret is not _UNSET or child.stopped:
            raise Fail("return/raise inside a loop body")
        if child.alternatives:
            raise Fail("conditional fast path inside a loop body")
        sums = [(fresh, vsum) for _var, fresh, vsum in binds]
        self.flops = self.flops + self._summate(child.flops, sums, loop_names, trip)
        self.mem = self.mem + self._summate(child.mem, sums, loop_names, trip)
        both = set(child.assigned) & set(child.aug)
        for name in sorted(both):
            self.env[name] = None
            self.aug[name] = None
        for name, delta in child.aug.items():
            if name in both:
                continue
            total: Optional[SymDim]
            if delta is None:
                total = None
            else:
                try:
                    total = self._summate(delta, sums, loop_names, trip)
                except Fail:
                    total = None
            cur = self.env.get(name)
            if total is None or not isinstance(cur, SymDim):
                self.env[name] = None
                self.aug[name] = None
            else:
                self.env[name] = cur + total
                prior = self.aug.get(name, ZERO)
                self.aug[name] = None if prior is None else prior + total
        for name in sorted(set(child.assigned) - both - set(child.aug)):
            self.env[name] = None
            self.assigned.add(name)
        for var, _fresh, _vsum in binds:
            self.env[var] = None  # value after the loop is the last element

    def _loop_iter(
        self, st: ast.For
    ) -> Tuple[SymDim, List[Tuple[str, str, Optional[SymDim]]]]:
        """``(trip_count, [(target_name, fresh_sym, element_sum), ...])``."""
        it = st.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            if it.keywords or len(it.args) not in (1, 2):
                raise Fail("unsupported range() form")
            if not isinstance(st.target, ast.Name):
                raise Fail("range loop needs a plain index variable")
            args = [self.eval(a) for a in it.args]
            if not all(isinstance(a, SymDim) for a in args):
                raise Fail("range() bound is not statically known")
            if len(args) == 1:
                lo, hi = ZERO, args[0]
            else:
                lo, hi = args
            trip = hi - lo
            # sum_{i=lo}^{hi-1} i = (hi*(hi-1) - lo*(lo-1)) / 2
            vsum = (hi * (hi - ONE) - lo * (lo - ONE)) * _HALF
            return trip, [(st.target.id, self.shared.fresh(), vsum)]
        value = self.eval(it)
        if isinstance(value, Lst):
            if value.length is None:
                raise Fail("loop over a list of unknown length")
            if isinstance(st.target, ast.Name):
                if len(value.sums) != 1:
                    raise Fail("scalar loop target over a tuple-element list")
                return value.length, [
                    (st.target.id, self.shared.fresh(), value.sums[0])
                ]
            if isinstance(st.target, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in st.target.elts
            ):
                if len(st.target.elts) != len(value.sums):
                    raise Fail("loop target arity disagrees with list summary")
                return value.length, [
                    (e.id, self.shared.fresh(), s)
                    for e, s in zip(st.target.elts, value.sums)
                ]
            raise Fail("unsupported loop target")
        raise Fail("loop over an unsupported iterable")

    def _summate(
        self,
        expr: SymDim,
        sums: List[Tuple[str, Optional[SymDim]]],
        loop_names: List[str],
        trip: SymDim,
    ) -> SymDim:
        """Close ``sum over the loop of expr`` given per-variable sums."""
        total = ZERO
        rest = expr
        for fresh, vsum in sums:
            coeff, new_rest = _affine_split(rest, fresh)
            if coeff is None or new_rest is None:
                raise Fail(f"loop cost is not affine in the index ({expr})")
            if coeff != ZERO:
                if any(n in coeff.free_symbols() for n in loop_names):
                    raise Fail("loop cost mixes index variables")
                if vsum is None:
                    raise Fail("loop cost depends on an unsummarized element")
                total = total + coeff * vsum
            rest = new_rest
        if any(n in rest.free_symbols() for n in loop_names):
            raise Fail("loop cost is not affine in the index")
        return total + rest * trip

    # ---- expressions -----------------------------------------------------

    def eval(self, node: ast.expr) -> object:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool) or v is None or isinstance(v, (str, bytes)):
                return None
            if v is Ellipsis:
                return None
            if isinstance(v, int):
                return SymDim.const(v)
            if isinstance(v, float):
                return SymDim.const(Fraction(v))
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in ("np", "numpy"):
                return NPMOD
            return None
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            if isinstance(node.op, ast.USub):
                if isinstance(operand, SymDim):
                    return -operand
                if isinstance(operand, Arr):
                    return self._elementwise([operand])
                return None
            if isinstance(node.op, ast.UAdd):
                return operand
            return None
        if isinstance(node, ast.Compare):
            vals = [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
            if any(isinstance(v, Arr) for v in vals):
                return self._elementwise(vals)
            return None
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.eval(v)
            return None
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Tuple):
            return Tup([self.eval(e) for e in node.elts])
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.JoinedStr)):
            return None
        raise Fail(f"unsupported expression {type(node).__name__}")

    def _binop(self, node: ast.BinOp) -> object:
        a = self.eval(node.left)
        b = self.eval(node.right)
        if isinstance(a, Arr) or isinstance(b, Arr):
            if isinstance(node.op, ast.MatMult):
                return _in_matmul(self, a, b)
            return self._elementwise([a, b])
        if not (isinstance(a, SymDim) and isinstance(b, SymDim)):
            return None
        op = node.op
        if isinstance(op, ast.Add):
            return a + b
        if isinstance(op, ast.Sub):
            return a - b
        if isinstance(op, ast.Mult):
            return a * b
        if isinstance(op, ast.FloorDiv):
            return floordiv(a, b)
        if isinstance(op, ast.Div):
            quotient = a.exact_div(b)
            if quotient is None:
                raise Fail(f"inexact symbolic division {a} / {b}")
            return quotient
        if isinstance(op, ast.Pow):
            e = b.as_const()
            if e is None or e.denominator != 1 or e < 0:
                raise Fail("symbolic exponent")
            return a ** int(e)
        return None

    def _elementwise(self, vals: Sequence[object]) -> Arr:
        arrs = [v for v in vals if isinstance(v, Arr)]
        if any(not isinstance(v, (Arr, SymDim)) for v in vals):
            raise Fail("elementwise operation with an unknown operand")
        out = arrs[0]
        for other in arrs[1:]:
            out = broadcast(out, other)
        size = out.size()
        if size is None:
            raise Fail("elementwise operation of unknown extent")
        self.flops = self.flops + size
        self.mem = self.mem + _FOUR * size
        return out

    # ---- attributes / subscripts ----------------------------------------

    def _attribute(self, node: ast.Attribute) -> object:
        base = self.eval(node.value)
        name = node.attr
        if isinstance(base, Marker) and base.kind == "npmod":
            if name in NP_SUBMODULES:
                return base
            return Marker("npfunc", name)
        if isinstance(base, Arr):
            if name == "shape":
                if base.lead is not None:
                    return None
                return Tup(base.dims)
            if name == "size":
                return base.size()
            if name == "ndim":
                return None if base.lead is not None else SymDim.const(len(base.dims))
            if name == "T":
                if base.lead is not None:
                    raise Fail(".T on an ellipsis-shaped array")
                return Arr(tuple(reversed(base.dims)))
            if name == "strides":
                return Tup((None,) * len(base.dims))
            return None
        if isinstance(base, (Geom, Xform, Obj)):
            return base.attr(name)
        return None

    def _subscript(self, node: ast.Subscript) -> object:
        base = self.eval(node.value)
        if isinstance(base, Arr):
            return self._subscript_arr(base, node.slice)
        if isinstance(base, Tup):
            idx_node = node.slice
            if isinstance(idx_node, ast.Slice):
                return None
            idx = self.eval(idx_node)
            if isinstance(idx, SymDim):
                c = idx.as_const()
                if c is not None and c.denominator == 1:
                    i = int(c)
                    if -len(base.items) <= i < len(base.items):
                        return base.items[i]
            return None
        return None

    def _subscript_arr(self, base: Arr, slice_node: ast.expr) -> Arr:
        if base.lead is not None:
            raise Fail("subscript on an ellipsis-shaped array")
        if isinstance(slice_node, ast.Tuple):
            indices = list(slice_node.elts)
        else:
            indices = [slice_node]
        dims = list(base.dims)
        out: List[Optional[SymDim]] = []
        pos = 0
        for nth, idx in enumerate(indices):
            if isinstance(idx, ast.Constant) and idx.value is Ellipsis:
                # keep axes until the remaining indices line up with the
                # trailing dims (at most one Ellipsis, numpy's own rule)
                after = len(indices) - nth - 1
                while len(dims) - pos > after:
                    out.append(dims[pos])
                    pos += 1
                continue
            if pos >= len(dims):
                raise Fail("subscript arity exceeds array rank")
            dim = dims[pos]
            if isinstance(idx, ast.Slice):
                out.append(self._slice_extent(dim, idx))
            else:
                self.eval(idx)  # an index: drops the axis
            pos += 1
        out.extend(dims[pos:])
        return Arr(tuple(out))

    def _slice_extent(
        self, dim: Optional[SymDim], sl: ast.Slice
    ) -> Optional[SymDim]:
        lo = self.eval(sl.lower) if sl.lower is not None else None
        up = self.eval(sl.upper) if sl.upper is not None else None
        step = self.eval(sl.step) if sl.step is not None else None
        lo = lo if isinstance(lo, SymDim) else (None if sl.lower else ZERO)
        up_known = isinstance(up, SymDim)
        if sl.upper is not None and not up_known:
            return None
        if lo is None:
            return None
        if step is not None:
            if not isinstance(step, SymDim):
                return None
            c = step.as_const()
            if c is not None:
                if c == -1 and sl.lower is None and sl.upper is None:
                    return dim
                if c <= 0:
                    raise Fail("unsupported negative slice step")
            # symbolic steps are assumed positive (dimension algebra)
        if up_known:
            uc = up.as_const()
            if uc is not None and uc < 0:
                if dim is None:
                    return None
                extent = dim + up
            else:
                extent = up - lo
        elif dim is None:
            return None
        else:
            lc = lo.as_const()
            if lc is not None and lc < 0:
                extent = -lo
            else:
                extent = dim - lo
        if step is not None and extent is not None:
            c = step.as_const()
            if c is None or c > 1:
                extent = ceildiv(extent, step)
        return extent

    # ---- calls -----------------------------------------------------------

    def _call(self, node: ast.Call) -> object:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name == "len":
                return self._builtin_len(node)
            if name in ("int", "float"):
                if len(node.args) == 1:
                    value = self.eval(node.args[0])
                    return value if isinstance(value, SymDim) else None
                return None
            if name in _FREE_CALLS:
                for a in node.args:
                    self.eval(a)
                return None
            if name == "WinogradConvCache":
                return None
            if name == "TileGrid":
                return self._tile_grid_ctor(node)
            info = self.shared.cp.resolve(name)
            if info is AMBIGUOUS:
                raise Fail(f"ambiguous callee {name!r}")
            if info is not None:
                return self._summary_call(node, info)
            raise Fail(f"call to uncosted function {name!r}")
        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value)
            attr = func.attr
            if isinstance(recv, Marker) and recv.kind == "npmod":
                handler = _INTRINSICS.get(attr)
                if handler is None:
                    raise Fail(f"unmodeled numpy call np.{attr}")
                return handler(self, node)
            if isinstance(recv, Arr):
                handler = _ARR_METHODS.get(attr)
                if handler is None:
                    raise Fail(f"unmodeled array method .{attr}()")
                return handler(self, recv, node)
            if isinstance(recv, Xform):
                prebind = {"M": recv.m, "R": recv.r}
                if recv.m is not None and recv.r is not None:
                    prebind["T"] = recv.m + recv.r - 1
                return self._method_summary(node, "WinogradTransform", attr, prebind)
            if isinstance(recv, Geom):
                return self._method_summary(node, "TileGrid", attr, {})
            if isinstance(recv, Obj):
                return self._method_summary(node, recv.cls, attr, {})
            if isinstance(recv, Lst):
                if attr in ("append", "extend", "sort"):
                    raise Fail("list mutation is outside the costed fragment")
                return None
            raise Fail(f"method call .{attr}() on an unknown receiver")
        raise Fail("unsupported call form")

    def _builtin_len(self, node: ast.Call) -> Optional[SymDim]:
        if len(node.args) != 1:
            return None
        value = self.eval(node.args[0])
        if isinstance(value, Arr):
            return value.dims[0] if value.lead is None and value.dims else None
        if isinstance(value, Lst):
            return value.length
        if isinstance(value, Tup):
            return SymDim.const(len(value.items))
        return None

    def _tile_grid_ctor(self, node: ast.Call) -> Geom:
        fields = ["height", "width", "pad", "m", "r"]
        values: Dict[str, object] = {}
        for name, arg in zip(fields, node.args):
            values[name] = self.eval(arg)
        for kw in node.keywords:
            if kw.arg in fields:
                values[kw.arg] = self.eval(kw.value)
        def _dim(v):
            return v if isinstance(v, SymDim) else None
        return Geom(*(_dim(values.get(f)) for f in fields))

    def _method_summary(
        self, node: ast.Call, cls: Optional[str], attr: str, prebind: Dict
    ) -> object:
        cp = self.shared.cp
        info = cp.resolve(f"{cls}.{attr}") if cls else None
        if info is None or info is AMBIGUOUS:
            info = cp.resolve(attr)
        if info is AMBIGUOUS:
            raise Fail(f"ambiguous callee {attr!r}")
        if info is None:
            raise Fail(f"method call to uncosted function .{attr}()")
        clean = {k: v for k, v in prebind.items() if v is not None}
        return self._summary_call(node, info, prebind=clean)

    # ---- interprocedural summaries ---------------------------------------

    def _summary_call(
        self,
        node: ast.Call,
        info: ContractDef,
        prebind: Optional[Dict[str, SymDim]] = None,
    ) -> object:
        cc = info.cost
        if cc is None or info.cost_error is not None:
            raise Fail(f"callee {info.qualname!r} lacks a usable @cost summary")
        contract = info.contract
        bindings: Dict[str, SymDim] = dict(prebind or {})
        actuals: Dict[str, object] = {}
        params = info.params
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                raise Fail("starred call argument")
            value = self.eval(arg)
            if i < len(params):
                actuals[params[i]] = value
        for kw in node.keywords:
            if kw.arg is None:
                raise Fail("**kwargs call argument")
            value = self.eval(kw.value)
            if kw.arg in params:
                actuals[kw.arg] = value
        lead_product: object = _UNSET  # first-ellipsis-arg leading product
        lead_explicit: Optional[Tuple[Optional[SymDim], ...]] = None
        if contract is not None:
            for param, entry in zip(params, contract.args):
                value = actuals.get(param)
                if entry.kind == "scalar":
                    bname = _bare_sym(entry.expr)
                    if (
                        bname
                        and bname not in bindings
                        and isinstance(value, SymDim)
                    ):
                        bindings[bname] = value
                elif entry.kind == "array":
                    if not isinstance(value, Arr):
                        continue
                    if entry.ellipsis:
                        n = len(entry.dims)
                        if len(value.dims) < n:
                            continue
                        split = len(value.dims) - n
                        trailing = value.dims[split:]
                        leading = value.dims[:split]
                        if lead_product is _UNSET:
                            prod: Optional[SymDim]
                            prod = value.lead if value.lead is not None else ONE
                            for d in leading:
                                if d is None or prod is None:
                                    prod = None
                                    break
                                prod = prod * d
                            lead_product = prod
                            if value.lead is None:
                                lead_explicit = leading
                        for dexpr, dval in zip(entry.dims, trailing):
                            bname = _bare_sym(dexpr)
                            if bname and bname not in bindings and dval is not None:
                                bindings[bname] = dval
                    else:
                        if value.lead is not None or len(value.dims) != len(
                            entry.dims
                        ):
                            continue  # rank conflicts are SHAPE002's domain
                        for dexpr, dval in zip(entry.dims, value.dims):
                            bname = _bare_sym(dexpr)
                            if bname and bname not in bindings and dval is not None:
                                bindings[bname] = dval
                else:  # skip entry: structured facts still bind geometry
                    if isinstance(value, Obj):
                        # an attribute bag carrying a grid (e.g. the conv
                        # cache) exposes that grid's geometry symbols
                        for attr_value in value.attrs.values():
                            if isinstance(attr_value, Geom):
                                value = attr_value
                                break
                    if isinstance(value, Geom):
                        for s, field in zip(Geom.BIND_SYMS, Geom.BINDINGS):
                            fv = getattr(value, field)
                            if s not in bindings and fv is not None:
                                bindings[s] = fv
                    elif isinstance(value, Xform):
                        if "M" not in bindings and value.m is not None:
                            bindings["M"] = value.m
                        if "R" not in bindings and value.r is not None:
                            bindings["R"] = value.r
                        if (
                            "T" not in bindings
                            and value.m is not None
                            and value.r is not None
                        ):
                            bindings["T"] = value.m + value.r - 1
        if "ELL" not in bindings and lead_product is not _UNSET:
            if lead_product is None:
                raise Fail(
                    f"cannot bind leading extent for callee {info.qualname!r}"
                )
            bindings["ELL"] = lead_product
        for quantity, attr in ((cc.flops, "flops"), (cc.mem, "mem")):
            closed = cc.closed(quantity) if quantity is not None else ZERO
            missing = closed.free_symbols() - set(bindings)
            if missing:
                raise Fail(
                    f"unbound symbols {sorted(missing)} in {info.qualname!r} "
                    f"{attr} summary"
                )
            setattr(self, attr, getattr(self, attr) + closed.subs(bindings))
        return self._summary_return(info, cc, bindings, lead_explicit)

    def _summary_return(
        self,
        info: ContractDef,
        cc,
        bindings: Dict[str, SymDim],
        lead_explicit: Optional[Tuple[Optional[SymDim], ...]],
    ) -> object:
        if cc.ret is not None:
            closed = cc.closed(cc.ret)
            missing = closed.free_symbols() - set(bindings)
            if missing:
                raise Fail(
                    f"unbound symbols {sorted(missing)} in {info.qualname!r} "
                    f"ret summary"
                )
            return closed.subs(bindings)
        if cc.exec_only():
            length = cc.closed(cc.ret_len) if cc.ret_len is not None else None
            if length is not None:
                if length.free_symbols() - set(bindings):
                    raise Fail(
                        f"unbound symbols in {info.qualname!r} ret_len summary"
                    )
                length = length.subs(bindings)
            sums: List[Optional[SymDim]] = []
            for s in cc.ret_sum or (None,):
                if s is None:
                    sums.append(None)
                else:
                    closed = cc.closed(s)
                    if closed.free_symbols() - set(bindings):
                        sums.append(None)
                    else:
                        sums.append(closed.subs(bindings))
            return Lst(length, sums)
        contract = info.contract
        if contract is None:
            return None
        outs: List[object] = []
        for entry in contract.returns:
            if entry.kind == "scalar":
                closed = cc.closed(entry.expr) if entry.expr is not None else None
                if closed is not None and not (
                    closed.free_symbols() - set(bindings)
                ):
                    outs.append(closed.subs(bindings))
                else:
                    outs.append(None)
            elif entry.kind == "array":
                dims: List[Optional[SymDim]] = []
                for dexpr in entry.dims:
                    if dexpr is None:
                        dims.append(None)
                        continue
                    closed = cc.closed(dexpr)
                    if closed.free_symbols() - set(bindings):
                        dims.append(None)
                    else:
                        dims.append(closed.subs(bindings))
                if entry.ellipsis:
                    if lead_explicit is not None:
                        outs.append(Arr(tuple(lead_explicit) + tuple(dims)))
                    elif "ELL" in bindings:
                        outs.append(Arr(tuple(dims), lead=bindings["ELL"]))
                    else:
                        outs.append(None)
                else:
                    outs.append(Arr(tuple(dims)))
            else:
                outs.append(None)
        if len(outs) == 1:
            return outs[0]
        return Tup(outs)


# ---------------------------------------------------------------------------
# numpy intrinsic cost table
# ---------------------------------------------------------------------------


def _need_arr(value: object, what: str) -> Arr:
    if not isinstance(value, Arr):
        raise Fail(f"{what} is not a tracked array")
    return value


def _prod(dims: Sequence[Optional[SymDim]], what: str) -> SymDim:
    total = ONE
    for d in dims:
        if d is None:
            raise Fail(f"{what} has an unknown extent")
        total = total * d
    return total


def _charge_out(dr: FnDeriver, out: Arr, flops: Optional[SymDim]) -> Arr:
    size = out.size()
    if size is None:
        raise Fail("result of unknown extent")
    if flops is not None:
        dr.flops = dr.flops + flops
    dr.mem = dr.mem + _FOUR * size
    return out


def _kwarg(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _shape_to_dims(value: object) -> Tuple[Optional[SymDim], ...]:
    if isinstance(value, Tup):
        return tuple(
            d if isinstance(d, SymDim) else None for d in value.items
        )
    if isinstance(value, SymDim):
        return (value,)
    raise Fail("allocation shape is not statically known")


def _in_matmul(dr: FnDeriver, a: object, b: object) -> Arr:
    arr_a = _need_arr(a, "matmul operand")
    arr_b = _need_arr(b, "matmul operand")
    if arr_a.lead is not None or arr_b.lead is not None:
        raise Fail("matmul on ellipsis-shaped arrays")
    if len(arr_a.dims) < 2 or len(arr_b.dims) < 2:
        raise Fail("matmul needs rank >= 2 operands")
    m, k = arr_a.dims[-2], arr_a.dims[-1]
    n = arr_b.dims[-1]
    batch = broadcast(Arr(arr_a.dims[:-2]), Arr(arr_b.dims[:-2])).dims
    if m is None or k is None or n is None:
        raise Fail("matmul extent unknown")
    flops = 2 * _prod(batch, "matmul batch") * m * k * n
    return _charge_out(dr, Arr(tuple(batch) + (m, n)), flops)


def _i_matmul(dr: FnDeriver, node: ast.Call) -> Arr:
    args = [dr.eval(a) for a in node.args]
    if len(args) != 2:
        raise Fail("matmul needs two arguments")
    return _in_matmul(dr, args[0], args[1])


def _axes_list(node: ast.expr, dr: FnDeriver) -> List[int]:
    items: Sequence[object]
    if isinstance(node, (ast.List, ast.Tuple)):
        items = [dr.eval(e) for e in node.elts]
    else:
        value = dr.eval(node)
        if isinstance(value, Tup):
            items = value.items
        elif isinstance(value, SymDim):
            items = [value]
        else:
            raise Fail("tensordot axes are not literal")
    out = []
    for item in items:
        if not isinstance(item, SymDim):
            raise Fail("tensordot axis is not a constant")
        c = item.as_const()
        if c is None or c.denominator != 1:
            raise Fail("tensordot axis is not a constant")
        out.append(int(c))
    return out


def _i_tensordot(dr: FnDeriver, node: ast.Call) -> Arr:
    if len(node.args) < 2:
        raise Fail("tensordot needs two array arguments")
    a = _need_arr(dr.eval(node.args[0]), "tensordot operand")
    b = _need_arr(dr.eval(node.args[1]), "tensordot operand")
    if b.lead is not None:
        raise Fail("tensordot on ellipsis-shaped right operand")
    axes_node = node.args[2] if len(node.args) > 2 else _kwarg(node, "axes")
    if axes_node is None or not isinstance(axes_node, ast.Tuple) or len(
        axes_node.elts
    ) != 2:
        raise Fail("tensordot needs explicit axes=([...], [...])")
    raw_a = _axes_list(axes_node.elts[0], dr)
    if a.lead is not None:
        # Only negative axes resolve unambiguously against the explicit
        # trailing dims of an ellipsis-shaped array.
        if any(ax >= 0 for ax in raw_a):
            raise Fail("tensordot on ellipsis lead needs negative axes")
        ax_a = [len(a.dims) + ax for ax in raw_a]
        if any(ax < 0 for ax in ax_a):
            raise Fail("tensordot axis reaches into ellipsis lead")
    else:
        ax_a = [ax % len(a.dims) for ax in raw_a]
    ax_b = [ax % len(b.dims) for ax in _axes_list(axes_node.elts[1], dr)]
    contracted = [a.dims[ax] for ax in ax_a]
    out_dims = tuple(
        d for i, d in enumerate(a.dims) if i not in ax_a
    ) + tuple(d for i, d in enumerate(b.dims) if i not in ax_b)
    out = Arr(out_dims, lead=a.lead)
    size = out.size()
    if size is None:
        raise Fail("tensordot extent unknown")
    flops = 2 * size * _prod(contracted, "tensordot contraction")
    return _charge_out(dr, out, flops)


def _i_einsum(dr: FnDeriver, node: ast.Call) -> Arr:
    if not node.args or not (
        isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        raise Fail("einsum needs a literal subscript string")
    spec = node.args[0].value.replace(" ", "")
    if "->" not in spec:
        raise Fail("einsum needs an explicit '->' output")
    lhs, rhs = spec.split("->")
    subscripts = lhs.split(",")
    arrays = [
        _need_arr(dr.eval(a), "einsum operand") for a in node.args[1:]
    ]
    if len(arrays) != len(subscripts):
        raise Fail("einsum subscript/operand arity mismatch")
    letters: Dict[str, SymDim] = {}
    for sub, arr in zip(subscripts, arrays):
        if arr.lead is not None or len(sub) != len(arr.dims):
            raise Fail("einsum operand rank mismatch")
        for letter, dim in zip(sub, arr.dims):
            if letter not in letters and dim is not None:
                letters[letter] = dim
    distinct = set("".join(subscripts))
    missing = distinct - set(letters)
    if missing:
        raise Fail(f"einsum extent unknown for {sorted(missing)}")
    flops = 2 * _prod([letters[x] for x in sorted(distinct)], "einsum")
    out_dims = tuple(letters[x] for x in rhs)
    return _charge_out(dr, Arr(out_dims), flops)


def _i_alloc(dr: FnDeriver, node: ast.Call) -> Arr:
    if not node.args:
        raise Fail("allocation without a shape")
    dims = _shape_to_dims(dr.eval(node.args[0]))
    return _charge_out(dr, Arr(dims), None)


def _i_alloc_like(dr: FnDeriver, node: ast.Call) -> Arr:
    if not node.args:
        raise Fail("*_like without a prototype")
    proto = _need_arr(dr.eval(node.args[0]), "*_like prototype")
    return _charge_out(dr, Arr(proto.dims, lead=proto.lead), None)


def _i_copy(dr: FnDeriver, node: ast.Call) -> Arr:
    if not node.args:
        raise Fail("copy without an argument")
    src = _need_arr(dr.eval(node.args[0]), "copy source")
    return _charge_out(dr, Arr(src.dims, lead=src.lead), None)


def _i_pad(dr: FnDeriver, node: ast.Call) -> Arr:
    if len(node.args) < 2:
        raise Fail("pad needs explicit widths")
    src = _need_arr(dr.eval(node.args[0]), "pad source")
    if src.lead is not None:
        raise Fail("pad on an ellipsis-shaped array")
    widths = dr.eval(node.args[1])
    if not isinstance(widths, Tup):
        raise Fail("pad widths are not a literal tuple")
    dims = list(src.dims)
    items = widths.items
    if len(items) != len(dims):
        raise Fail("pad widths arity mismatch")
    out: List[Optional[SymDim]] = []
    for dim, pair in zip(dims, items):
        if not (isinstance(pair, Tup) and len(pair.items) == 2):
            raise Fail("pad widths must be (lo, hi) pairs")
        lo, hi = pair.items
        if dim is None or not isinstance(lo, SymDim) or not isinstance(hi, SymDim):
            out.append(None)
        else:
            out.append(dim + lo + hi)
    return _charge_out(dr, Arr(tuple(out)), None)


def _i_elementwise(dr: FnDeriver, node: ast.Call) -> Arr:
    vals = [dr.eval(a) for a in node.args]
    return dr._elementwise(vals)


def _i_transpose(dr: FnDeriver, node: ast.Call) -> Arr:
    if not node.args:
        raise Fail("transpose without an argument")
    src = _need_arr(dr.eval(node.args[0]), "transpose source")
    return _m_transpose(dr, src, node, arg_offset=1)


def _i_sliding_window(dr: FnDeriver, node: ast.Call) -> Arr:
    if len(node.args) < 2:
        raise Fail("sliding_window_view needs a window shape")
    src = _need_arr(dr.eval(node.args[0]), "sliding_window_view source")
    if src.lead is not None:
        raise Fail("sliding_window_view on an ellipsis-shaped array")
    window = dr.eval(node.args[1])
    windows: Sequence[object]
    if isinstance(window, Tup):
        windows = window.items
    else:
        windows = [window]
    axis_node = node.args[2] if len(node.args) > 2 else _kwarg(node, "axis")
    if axis_node is not None:
        axis_val = dr.eval(axis_node)
        if isinstance(axis_val, Tup):
            axes = []
            for item in axis_val.items:
                c = item.as_const() if isinstance(item, SymDim) else None
                if c is None:
                    raise Fail("sliding_window_view axis is not constant")
                axes.append(int(c))
        else:
            c = axis_val.as_const() if isinstance(axis_val, SymDim) else None
            if c is None:
                raise Fail("sliding_window_view axis is not constant")
            axes = [int(c)]
    else:
        axes = list(range(len(src.dims) - len(windows), len(src.dims)))
    if len(axes) != len(windows):
        raise Fail("sliding_window_view window/axis arity mismatch")
    dims = list(src.dims)
    appended: List[Optional[SymDim]] = []
    for ax, w in zip(axes, windows):
        ax %= len(dims)
        if not isinstance(w, SymDim) or dims[ax] is None:
            raise Fail("sliding_window_view extent unknown")
        dims[ax] = dims[ax] - w + ONE
        appended.append(w)
    return Arr(tuple(dims) + tuple(appended))  # a view: free


def _i_as_strided(dr: FnDeriver, node: ast.Call) -> Arr:
    shape_node = node.args[1] if len(node.args) > 1 else _kwarg(node, "shape")
    if shape_node is None:
        raise Fail("as_strided needs an explicit shape")
    dims = _shape_to_dims(dr.eval(shape_node))
    return Arr(dims)  # a view: free (strides deliberately not evaluated)


def _i_prod(dr: FnDeriver, node: ast.Call) -> Optional[SymDim]:
    if len(node.args) != 1:
        return None
    value = dr.eval(node.args[0])
    if isinstance(value, Tup) and all(
        isinstance(v, SymDim) for v in value.items
    ):
        total = ONE
        for v in value.items:
            total = total * v
        return total
    if isinstance(value, Arr):
        return value.size()
    return None


_ELEMENTWISE_UFUNCS = (
    "maximum", "minimum", "abs", "exp", "sqrt", "sign", "tanh", "where",
    "clip", "square", "add", "subtract", "multiply",
)

_INTRINSICS = {
    "matmul": _i_matmul,
    "dot": _i_matmul,
    "tensordot": _i_tensordot,
    "einsum": _i_einsum,
    "zeros": _i_alloc,
    "ones": _i_alloc,
    "empty": _i_alloc,
    "full": _i_alloc,
    "zeros_like": _i_alloc_like,
    "ones_like": _i_alloc_like,
    "empty_like": _i_alloc_like,
    "full_like": _i_alloc_like,
    "copy": _i_copy,
    "ascontiguousarray": _i_copy,
    "asarray": _i_copy,
    "array": _i_copy,
    "pad": _i_pad,
    "transpose": _i_transpose,
    "sliding_window_view": _i_sliding_window,
    "as_strided": _i_as_strided,
    "prod": _i_prod,
}
for _name in _ELEMENTWISE_UFUNCS:
    _INTRINSICS[_name] = _i_elementwise


def _m_transpose(
    dr: FnDeriver, src: Arr, node: ast.Call, arg_offset: int = 0
) -> Arr:
    if src.lead is not None:
        raise Fail("transpose on an ellipsis-shaped array")
    perm_args = node.args[arg_offset:]
    if not perm_args:
        return Arr(tuple(reversed(src.dims)))
    if len(perm_args) == 1:
        value = dr.eval(perm_args[0])
        items = value.items if isinstance(value, Tup) else [value]
    else:
        items = [dr.eval(a) for a in perm_args]
    perm = []
    for item in items:
        c = item.as_const() if isinstance(item, SymDim) else None
        if c is None or c.denominator != 1:
            raise Fail("transpose permutation is not constant")
        perm.append(int(c))
    if sorted(perm) != list(range(len(src.dims))):
        raise Fail("transpose permutation does not match rank")
    return Arr(tuple(src.dims[i] for i in perm))


def _m_transpose_method(dr: FnDeriver, src: Arr, node: ast.Call) -> Arr:
    return _m_transpose(dr, src, node, arg_offset=0)


def _m_reshape(dr: FnDeriver, src: Arr, node: ast.Call) -> Arr:
    # view semantics assumed: reshape of a contiguous result is free (a
    # deliberate under-approximation, documented in docs/statcheck.md)
    if src.lead is not None:
        raise Fail("reshape on an ellipsis-shaped array")
    if len(node.args) == 1:
        value = dr.eval(node.args[0])
        items = value.items if isinstance(value, Tup) else [value]
    else:
        items = [dr.eval(a) for a in node.args]
    total = src.size()
    dims: List[Optional[SymDim]] = []
    hole = None
    for i, item in enumerate(items):
        if not isinstance(item, SymDim):
            raise Fail("reshape extent unknown")
        c = item.as_const()
        if c is not None and c == -1:
            if hole is not None:
                raise Fail("reshape with two -1 extents")
            hole = i
            dims.append(None)
        else:
            dims.append(item)
    if hole is not None:
        if total is None:
            raise Fail("reshape -1 with unknown total")
        known = ONE
        for d in dims:
            if d is not None:
                known = known * d
        missing = total.exact_div(known)
        if missing is None:
            raise Fail("reshape -1 does not divide the total extent")
        dims[hole] = missing
    return Arr(tuple(dims))


def _m_copy(dr: FnDeriver, src: Arr, node: ast.Call) -> Arr:
    return _charge_out(dr, Arr(src.dims, lead=src.lead), None)


def _m_ravel(dr: FnDeriver, src: Arr, node: ast.Call) -> Arr:
    size = src.size()
    if size is None:
        raise Fail("ravel of unknown extent")
    return Arr((size,))


def _m_flatten(dr: FnDeriver, src: Arr, node: ast.Call) -> Arr:
    size = src.size()
    if size is None:
        raise Fail("flatten of unknown extent")
    return _charge_out(dr, Arr((size,)), None)


_ARR_METHODS = {
    "transpose": _m_transpose_method,
    "reshape": _m_reshape,
    "astype": _m_copy,
    "copy": _m_copy,
    "ravel": _m_ravel,
    "flatten": _m_flatten,
}


# ---------------------------------------------------------------------------
# the per-file pass
# ---------------------------------------------------------------------------


class DerivedCost:
    """One derivation result (main path plus recorded fast paths)."""

    __slots__ = ("flops", "mem", "ret", "alternatives")

    def __init__(self, deriver: FnDeriver) -> None:
        self.flops = deriver.flops
        self.mem = deriver.mem
        self.ret = deriver.ret if deriver.ret is not _UNSET else None
        self.alternatives = list(deriver.alternatives)


def _side_by_side(label: str, derived: SymDim, declared: SymDim) -> str:
    return (
        f"\n    derived {label}:  {derived}"
        f"\n    declared {label}: {declared}"
    )


class CostPass:
    """COST-family analysis of one file (cached per :class:`Context`)."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.events: List[Tuple[str, ast.AST, str]] = []
        self.defs = collect_contracts(tree)
        self.registry = registry_for(path, tree)
        self.base_env = _module_int_env(tree)
        self.derived: Dict[str, DerivedCost] = {}
        self._run()

    def resolve(self, name: str):
        return self.registry.get(name)

    # ---- orchestration ---------------------------------------------------

    def _run(self) -> None:
        seen = set()
        costed: List[ContractDef] = []
        for info in self.defs:
            if info.cost_decorator is None:
                continue
            if info.qualname in seen:
                continue
            seen.add(info.qualname)
            costed.append(info)
        for info in costed:
            self._check_one(info)
        self._check_traffic(costed)
        self._check_wire(costed)
        self._check_baseline(costed)
        self._check_memo_keys(costed)

    def _event(self, rule: str, node: ast.AST, message: str) -> None:
        self.events.append((rule, node, message))

    # ---- COST001 ---------------------------------------------------------

    def _check_one(self, info: ContractDef) -> None:
        node = info.cost_decorator or info.node
        if info.cost_error is not None:
            self._event("COST001", node, f"{info.qualname}: {info.cost_error}")
            return
        cc = info.cost
        if cc is None or cc.assume:
            return
        if cc.exec_only():
            self._verify_exec(info)
            return
        if info.contract is None:
            self._event(
                "COST001", node,
                f"{info.qualname}: @cost needs a @shaped contract to bind "
                f"its symbols",
            )
            return
        try:
            derived = self._derive(info)
        except Fail as exc:
            self._event(
                "COST001", node,
                f"{info.qualname}: could not derive cost: {exc}",
            )
            return
        except (SymDimError, ZeroDivisionError, RecursionError) as exc:
            self._event(
                "COST001", node,
                f"{info.qualname}: could not derive cost: {exc}",
            )
            return
        self.derived[info.qualname] = derived
        wenv = cc.where_env()
        decl_flops = cc.closed(cc.flops) if cc.flops is not None else ZERO
        decl_mem = cc.closed(cc.mem) if cc.mem is not None else ZERO
        paths = [("", derived.flops, derived.mem, derived.ret)]
        for i, (af, am, ar) in enumerate(derived.alternatives, start=1):
            paths.append((f" (fast path {i})", af, am, ar))
        for suffix, flops, mem, ret in paths:
            got_flops = flops.subs(wenv)
            got_mem = mem.subs(wenv)
            if not dims_equivalent(got_flops, decl_flops):
                self._event(
                    "COST001", node,
                    f"{info.qualname}{suffix}: derived flop count disagrees "
                    f"with the @cost declaration"
                    + _side_by_side("flops", got_flops, decl_flops),
                )
            if not dims_equivalent(got_mem, decl_mem):
                self._event(
                    "COST001", node,
                    f"{info.qualname}{suffix}: derived bytes-moved disagrees "
                    f"with the @cost declaration"
                    + _side_by_side("mem", got_mem, decl_mem),
                )
            if cc.ret is not None:
                decl_ret = cc.closed(cc.ret)
                if not isinstance(ret, SymDim):
                    self._event(
                        "COST001", node,
                        f"{info.qualname}{suffix}: @cost declares ret= but "
                        f"the derived return value is not a scalar "
                        f"polynomial",
                    )
                elif not dims_equivalent(ret.subs(wenv), decl_ret):
                    self._event(
                        "COST001", node,
                        f"{info.qualname}{suffix}: derived return value "
                        f"disagrees with the @cost declaration"
                        + _side_by_side("ret", ret.subs(wenv), decl_ret),
                    )

    def _derive(self, info: ContractDef) -> DerivedCost:
        fn = info.node
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise Fail("definition node unavailable")
        env: Dict[str, object] = dict(self.base_env)
        class_name = (
            info.qualname.rsplit(".", 1)[0] if "." in info.qualname else None
        )
        all_params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
        if all_params and all_params[0] in ("self", "cls"):
            self_name = all_params[0]
            fact = facts.CLASS_SELF_FACTS.get(class_name or "")
            env[self_name] = fact() if fact is not None else None
        contract = info.contract
        entries = contract.args if contract is not None else ()
        for param, entry in itertools.zip_longest(info.params, entries):
            if param is None:
                break
            if entry is None:
                env[param] = None
            elif entry.kind == "scalar":
                env[param] = entry.expr
            elif entry.kind == "array":
                lead = sym("ELL") if entry.ellipsis else None
                env[param] = Arr(entry.dims, lead=lead)
            else:
                fact = facts.PARAM_FACTS.get(param)
                env[param] = fact() if fact is not None else None
        shared = _Shared(self)
        deriver = FnDeriver(shared, env)
        deriver.run_body(fn.body)
        return DerivedCost(deriver)

    # ---- exec-verified list summaries ------------------------------------

    _BATTERY = (1, 2, 3, 4, 5, 8)

    def _verify_exec(self, info: ContractDef) -> None:
        node = info.cost_decorator or info.node
        cc = info.cost
        fn = info.node
        if not isinstance(fn, ast.FunctionDef):
            self._event(
                "COST001", node,
                f"{info.qualname}: exec-only summary on an unsupported "
                f"definition",
            )
            return
        impure = _function_impurity(fn)
        if impure is not None:
            self._event(
                "COST001", node,
                f"{info.qualname}: exec-only summary cannot be verified: "
                f"impure free name {impure!r}",
            )
            return
        syms: List[str] = []
        entries = info.contract.args if info.contract is not None else ()
        if len(entries) != len(info.params):
            self._event(
                "COST001", node,
                f"{info.qualname}: exec-only summary needs a full scalar "
                f"@shaped contract",
            )
            return
        for entry in entries:
            name = _bare_sym(entry.expr) if entry.kind == "scalar" else None
            if name is None:
                self._event(
                    "COST001", node,
                    f"{info.qualname}: exec-only summary needs scalar "
                    f"bare-symbol arguments",
                )
                return
            syms.append(name)
        module = ast.Module(body=[_strip_decorators(fn)], type_ignores=[])
        ast.fix_missing_locations(module)
        namespace = _exec_sandbox()
        try:
            exec(compile(module, "<statcheck-cost>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - defensive
            self._event(
                "COST001", node,
                f"{info.qualname}: exec-only summary failed to compile: {exc}",
            )
            return
        impl = namespace[fn.name]
        values = self._BATTERY if len(syms) <= 2 else self._BATTERY[:4]
        successes = 0
        for combo in itertools.product(values, repeat=len(syms)):
            env = dict(zip(syms, combo))
            try:
                result = impl(*combo)
            except Exception:
                continue
            if not isinstance(result, (list, tuple)):
                self._event(
                    "COST001", node,
                    f"{info.qualname}: exec-only summary did not return a "
                    f"list for arguments {env}",
                )
                return
            if cc.ret_len is not None:
                want = cc.closed(cc.ret_len).evaluate(env)
                if len(result) != want:
                    self._event(
                        "COST001", node,
                        f"{info.qualname}: length {len(result)} != declared "
                        f"ret_len {cc.ret_len} = {want} for {env}",
                    )
                    return
            for i, decl in enumerate(cc.ret_sum or ()):
                if decl is None:
                    continue
                if result and isinstance(result[0], (list, tuple)):
                    got = sum(item[i] for item in result)
                else:
                    if i != 0 or (cc.ret_sum and len(cc.ret_sum) != 1):
                        self._event(
                            "COST001", node,
                            f"{info.qualname}: ret_sum declares "
                            f"{len(cc.ret_sum)} components but elements "
                            f"are scalars",
                        )
                        return
                    got = sum(result)
                want = cc.closed(decl).evaluate(env)
                if got != want:
                    self._event(
                        "COST001", node,
                        f"{info.qualname}: component {i} sums to {got} != "
                        f"declared {decl} = {want} for {env}",
                    )
                    return
            successes += 1
        if successes == 0:
            self._event(
                "COST001", node,
                f"{info.qualname}: exec-only summary could not be executed "
                f"on any battery input",
            )

    # ---- COST002 ---------------------------------------------------------

    def _check_traffic(self, costed: List[ContractDef]) -> None:
        for info in costed:
            fact = facts.TRAFFIC_FACTS.get(info.name)
            if fact is None:
                continue
            cc = info.cost
            node = info.cost_decorator or info.node
            if cc is None or cc.ret is None:
                self._event(
                    "COST002", node,
                    f"{info.qualname}: traffic helper lacks a @cost ret= "
                    f"declaration to check against the analytical model",
                )
                continue
            declared = cc.closed(cc.ret)
            if not dims_equivalent(declared, fact):
                self._event(
                    "COST002", node,
                    f"{info.qualname}: declared traffic polynomial disagrees "
                    f"with the comm_model analytical factor"
                    + _side_by_side("bytes", declared, fact),
                )
        for cls in ast.walk(self.tree):
            if not (
                isinstance(cls, ast.ClassDef)
                and cls.name == facts.TRAFFIC_MACHINE_CLASS
            ):
                continue
            called = set()
            for sub in ast.walk(cls):
                if isinstance(sub, ast.Call):
                    fn = sub.func
                    if isinstance(fn, ast.Name):
                        called.add(fn.id)
                    elif isinstance(fn, ast.Attribute):
                        called.add(fn.attr)
            missing = sorted(set(facts.TRAFFIC_FACTS) - called)
            if missing:
                self._event(
                    "COST002", cls,
                    f"{cls.name}: traffic counters must route through the "
                    f"checked helpers; missing calls to {missing}",
                )

    # ---- COST004 ---------------------------------------------------------

    def _check_wire(self, costed: List[ContractDef]) -> None:
        for info in costed:
            fact = facts.WIRE_FACTS.get(info.name)
            if fact is None:
                continue
            cc = info.cost
            node = info.cost_decorator or info.node
            if cc is None or cc.ret is None:
                self._event(
                    "COST004", node,
                    f"{info.qualname}: collective wire-byte helper lacks a "
                    f"@cost ret= declaration",
                )
                continue
            declared = cc.closed(cc.ret)
            if not dims_equivalent(declared, fact):
                self._event(
                    "COST004", node,
                    f"{info.qualname}: declared wire bytes disagree with the "
                    f"collective's closed form"
                    + _side_by_side("bytes", declared, fact),
                )
        defined = {
            st.name
            for st in ast.walk(self.tree)
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for anchor, required in facts.WIRE_PRESENCE.items():
            if anchor not in defined:
                continue
            missing = sorted(set(required) - defined)
            if missing:
                anchor_node = next(
                    st for st in ast.walk(self.tree)
                    if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and st.name == anchor
                )
                self._event(
                    "COST004", anchor_node,
                    f"{anchor}: module must define the checked wire-byte "
                    f"helpers {missing}",
                )

    # ---- COST003 ---------------------------------------------------------

    def _check_baseline(self, costed: List[ContractDef]) -> None:
        baseline, keyer = self._load_baseline()
        if baseline is None:
            return
        for info in costed:
            cc = info.cost
            if cc is None:
                continue
            key = keyer(info)
            entry = baseline.get(key)
            if entry is None:
                continue  # new function: recorded at the next baseline regen
            node = info.cost_decorator or info.node
            current = cost_signature(cc)
            for quantity, sig in current.items():
                old = entry.get(quantity, {})
                for name, degree in sig.items():
                    prior = old.get(name, 0)
                    if degree > prior:
                        self._event(
                            "COST003", node,
                            f"{info.qualname}: declared {quantity} grew from "
                            f"degree {prior} to {degree} in {name} vs the "
                            f"checked-in complexity baseline "
                            f"(statcheck/costs/baseline.json); regenerate it "
                            f"deliberately if the increase is intended",
                        )

    def _load_baseline(self):
        candidate = Path(self.path)
        override = (
            candidate.parent / "statcheck-cost-baseline.json"
            if self.path != "<string>"
            else Path("statcheck-cost-baseline.json")
        )
        if override.is_file():
            try:
                data = json.loads(override.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                return None, None
            functions = data.get("functions", {})
            fname = candidate.name
            return functions, lambda info: f"{fname}::{info.qualname}"
        if not candidate.is_file():
            return None, None
        from ..registry import _package_root

        root = _package_root(candidate)
        if root is None:
            return None, None
        from .baseline import load_packaged_baseline

        functions = load_packaged_baseline()
        if functions is None:
            return None, None
        rel = candidate.resolve().relative_to(root).as_posix()
        return functions, lambda info: f"{rel}::{info.qualname}"

    # ---- COST005 ---------------------------------------------------------

    def _check_memo_keys(self, costed: List[ContractDef]) -> None:
        for info in costed:
            if "memoize_sweep" not in info.decorators:
                continue
            cc = info.cost
            if cc is None:
                continue
            node = info.cost_decorator or info.node
            bindable = {"ELL"} if any(
                e.kind == "array" and e.ellipsis
                for e in (info.contract.args if info.contract else ())
            ) else set()
            entries = info.contract.args if info.contract is not None else ()
            for param, entry in itertools.zip_longest(info.params, entries):
                if entry is None or param is None:
                    continue
                if entry.kind == "scalar":
                    name = _bare_sym(entry.expr)
                    if name:
                        bindable.add(name)
                elif entry.kind == "array":
                    for d in entry.dims:
                        name = _bare_sym(d)
                        if name:
                            bindable.add(name)
                else:
                    fact = facts.PARAM_FACTS.get(param)
                    made = fact() if fact is not None else None
                    if isinstance(made, Geom):
                        bindable |= set(Geom.BIND_SYMS)
                    elif isinstance(made, Xform):
                        bindable |= {"M", "R", "T"}
            for quantity, expr in (
                ("flops", cc.flops), ("mem", cc.mem), ("ret", cc.ret),
            ):
                if expr is None:
                    continue
                free = cc.closed(expr).free_symbols()
                leaked = sorted(free - bindable)
                if leaked:
                    self._event(
                        "COST005", node,
                        f"{info.qualname}: memoized sweep cost depends on "
                        f"{leaked} which the memo key (the function "
                        f"arguments) cannot determine — cached results will "
                        f"be reused across different {leaked} values",
                    )


def cost_signature(cc) -> Dict[str, Dict[str, int]]:
    """Per-quantity ``{symbol: degree}`` asymptotic signature."""
    out: Dict[str, Dict[str, int]] = {}
    for quantity, expr in (
        ("flops", cc.flops), ("mem", cc.mem), ("ret", cc.ret),
    ):
        if expr is None:
            continue
        closed = cc.closed(expr)
        sig = {
            name: closed.degree_in(name)
            for name in sorted(closed.free_symbols())
        }
        out[quantity] = {k: v for k, v in sig.items() if v > 0}
    return out


def cost_pass(ctx) -> CostPass:
    """The per-file pass, computed once and shared by all COST rules."""
    cached = ctx.cache.get("cost_pass")
    if cached is None:
        cached = ctx.cache["cost_pass"] = CostPass(ctx.path, ctx.tree)
    return cached
