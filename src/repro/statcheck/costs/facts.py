"""Analytical-model facts the COST rules check kernels against.

Three kinds of facts live here:

* **Self/parameter facts** — the symbolic state handed to methods of
  known classes (``WinogradTransform.tile`` is the bare symbol ``T``,
  matching the ``@shaped`` contracts which use ``T`` rigidly) and to
  well-known parameter names (``grid`` is always a ``TileGrid``).

* **Traffic facts (COST002)** — the per-layer communication-volume
  factors of :mod:`repro.core.comm_model`: the all-reduce ring factor
  ``2*(n-1)/n`` over replicated slices and the remote fraction
  ``(n_g-1)/n_g`` of scatter/gather traffic, written as the exact
  integer polynomials the functional machine must implement.

* **Wire-byte facts (COST004)** — closed forms for the collective
  algorithms the network/GPU simulators implement: ``2*(n-1)*M/n``
  per-slice ring all-reduce totals and ``n*(n-1)*B`` all-to-all.

The polynomials are stored as ``@cost`` dim strings and parsed through
the same grammar as the annotations so both sides of every comparison
live in one algebra.
"""

from __future__ import annotations

from typing import Dict

from ..symdims import SymDim, parse_dim, sym
from .values import Arr, Geom, Obj, Xform


def _T() -> SymDim:
    return sym("T")


def winograd_transform_fact() -> Obj:
    t = _T()
    return Obj("WinogradTransform", {
        "m": sym("M"), "r": sym("R"), "tile": t,
        "B": Arr((t, t)), "G": Arr((t, sym("R"))), "A": Arr((t, sym("M"))),
        "B_exact": Arr((t, t)), "G_exact": Arr((t, sym("R"))),
        "A_exact": Arr((t, sym("M"))),
    })


def mpt_worker_fact() -> Obj:
    return Obj("MptWorker", {
        "weights": Arr((sym("J"), sym("I"), sym("E"))),
    })


def tile_grid_fact() -> Geom:
    return Geom(sym("H"), sym("W"), sym("P"), sym("M"), sym("R"))


def conv_cache_fact() -> Obj:
    t = _T()
    return Obj("WinogradConvCache", {
        "input_tiles": Arr(
            (sym("B"), sym("I"), sym("TH"), sym("TW"), t, t)
        ),
        "grid": tile_grid_fact(),
    })


#: ``self`` facts by defining class name.
CLASS_SELF_FACTS = {
    "WinogradTransform": winograd_transform_fact,
    "MptWorker": mpt_worker_fact,
}

#: Facts bound to well-known parameter names when the contract marks
#: the argument ``_`` (skip).
PARAM_FACTS = {
    "grid": tile_grid_fact,
    "transform": lambda: Xform(sym("M"), sym("R")),
    "cache": conv_cache_fact,
}


# ---------------------------------------------------------------------------
# COST002 — layer traffic factors (core.functional vs core.comm_model)
# ---------------------------------------------------------------------------

#: Declared return polynomials the traffic helpers in
#: ``core/functional.py`` must match.  ``TS`` tiles, ``C`` channels,
#: ``E`` elements per tile, ``NG`` groups, ``NC`` clusters, ``SB``
#: replicated slice bytes.
TRAFFIC_FACTS: Dict[str, SymDim] = {
    "remote_scatter_bytes": parse_dim("floordiv(4*TS*C*E*(NG-1), NG)"),
    "remote_gather_bytes": parse_dim("floordiv(4*TS*C*E*(NG-1), NG)"),
    "allreduce_ring_bytes": parse_dim("2*(NC-1)*SB"),
}

#: Counter sites in the class named here must route through *all* the
#: traffic helpers — counting bytes inline would bypass COST002.
TRAFFIC_MACHINE_CLASS = "MptLayerMachine"


# ---------------------------------------------------------------------------
# COST004 — collective wire-byte closed forms (netsim / gpu)
# ---------------------------------------------------------------------------

#: ``N`` participants, ``MB``/``GB`` message/gradient bytes, ``BPP``
#: bytes per (src, dst) pair.
WIRE_FACTS: Dict[str, SymDim] = {
    "ring_wire_bytes": parse_dim("2*(N-1)*MB"),
    "all_to_all_wire_bytes": parse_dim("N*(N-1)*BPP"),
    "nccl_ring_wire_bytes": parse_dim("2*(N-1)*GB"),
}

#: (anchor definition) -> wire-byte helpers its module must define.
WIRE_PRESENCE = {
    "ring_allreduce": ("ring_wire_bytes", "all_to_all_wire_bytes"),
    "nccl_allreduce_time": ("nccl_ring_wire_bytes",),
}
