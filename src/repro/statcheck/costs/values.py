"""Abstract values flowing through the cost interpreter.

The domain is deliberately small: everything the annotated kernels
manipulate is either a symbolic scalar (:class:`~..symdims.SymDim`), an
array with symbolic dimensions (:class:`Arr`), one of three structured
facts (:class:`Geom` for :class:`repro.winograd.tiling.TileGrid`,
:class:`Xform` for :class:`repro.winograd.cook_toom.WinogradTransform`,
:class:`Obj` for other attribute bags), a list summary (:class:`Lst`),
a tuple (:class:`Tup`) — or ``None``, the unknown value.  Unknown is a
legitimate state (tags, dtypes, simulator handles); derivation only
fails when an unknown value reaches a construct whose cost depends on
it (a loop bound, an array extent).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..symdims import SymDim

ZERO = SymDim.const(0)
ONE = SymDim.const(1)


class Fail(Exception):
    """Cost derivation left the supported fragment (with a reason)."""


class Arr:
    """An ndarray with symbolic dims.

    ``lead`` is the symbolic *product* of un-enumerated leading axes
    (contract ellipsis); ``dims`` are the explicit (trailing) axes.
    """

    __slots__ = ("dims", "lead")

    def __init__(
        self,
        dims: Tuple[Optional[SymDim], ...],
        lead: Optional[SymDim] = None,
    ) -> None:
        self.dims = tuple(dims)
        self.lead = lead

    def size(self) -> Optional[SymDim]:
        total = self.lead if self.lead is not None else ONE
        for d in self.dims:
            if d is None:
                return None
            total = total * d
        return total

    def __repr__(self) -> str:
        inner = ", ".join("?" if d is None else str(d) for d in self.dims)
        if self.lead is not None:
            inner = f"...{self.lead}, {inner}"
        return f"Arr({inner})"


class Geom:
    """A :class:`TileGrid` fact: symbolic geometry fields plus the
    derived properties the tiling kernels read."""

    __slots__ = ("height", "width", "pad", "m", "r")

    def __init__(self, height, width, pad, m, r) -> None:
        self.height = height
        self.width = width
        self.pad = pad
        self.m = m
        self.r = r

    def attr(self, name: str) -> Optional[SymDim]:
        base = {
            "height": self.height, "width": self.width, "pad": self.pad,
            "m": self.m, "r": self.r,
        }
        if name in base:
            return base[name]
        if any(v is None for v in base.values()):
            return None
        from ..symdims import ceildiv

        tile = self.m + self.r - 1
        out_h = self.height + 2 * self.pad - self.r + 1
        out_w = self.width + 2 * self.pad - self.r + 1
        tiles_h = ceildiv(out_h, self.m)
        tiles_w = ceildiv(out_w, self.m)
        derived = {
            "tile": tile,
            "out_height": out_h,
            "out_width": out_w,
            "tiles_high": tiles_h,
            "tiles_wide": tiles_w,
            "tiles_per_image": tiles_h * tiles_w,
            "padded_height": (tiles_h - 1) * self.m + tile,
            "padded_width": (tiles_w - 1) * self.m + tile,
        }
        return derived.get(name)

    #: Symbols a ``_`` contract entry holding a Geom can bind.
    BINDINGS = ("height", "width", "pad", "m", "r")
    BIND_SYMS = ("H", "W", "P", "M", "R")


class Xform:
    """A :class:`WinogradTransform` fact (``m``/``r`` symbolic)."""

    __slots__ = ("m", "r")

    def __init__(self, m, r) -> None:
        self.m = m
        self.r = r

    def attr(self, name: str):
        if name == "m":
            return self.m
        if name == "r":
            return self.r
        if self.m is None or self.r is None:
            return None
        tile = self.m + self.r - 1
        if name == "tile":
            return tile
        matrices = {
            "B": (tile, tile), "G": (tile, self.r), "A": (tile, self.m),
            "B_exact": (tile, tile), "G_exact": (tile, self.r),
            "A_exact": (tile, self.m),
        }
        if name in matrices:
            return Arr(matrices[name])
        return None


class Obj:
    """An attribute bag (class-instance fact or opaque object)."""

    __slots__ = ("cls", "attrs")

    def __init__(self, cls: Optional[str], attrs: Dict[str, object]) -> None:
        self.cls = cls
        self.attrs = attrs

    def attr(self, name: str):
        return self.attrs.get(name)


class Lst:
    """A list summary: symbolic length and per-component element sums.

    ``sums[i]`` is the symbolic sum of component ``i`` over the whole
    list (``None`` = unknown); a list of plain numbers has one
    component.  Produced by ``@cost(ret_len=..., ret_sum=...)``
    summaries of exec-verified helpers.
    """

    __slots__ = ("length", "sums")

    def __init__(self, length, sums) -> None:
        self.length = length
        self.sums = tuple(sums)


class Tup:
    """A tuple of abstract values."""

    __slots__ = ("items",)

    def __init__(self, items) -> None:
        self.items = tuple(items)


class Marker:
    """Named opaque markers (numpy module, bound callables)."""

    __slots__ = ("kind", "name", "recv")

    def __init__(self, kind: str, name: str = "", recv=None) -> None:
        self.kind = kind
        self.name = name
        self.recv = recv


#: The ``np``/``numpy`` module object.
NPMOD = Marker("npmod")

#: Numpy attribute chains that are still module-like, not functions.
NP_SUBMODULES = frozenset({"lib", "stride_tricks", "linalg", "random", "fft"})


def broadcast(a: Arr, b: Arr) -> Arr:
    """Elementwise result shape; trailing-aligned, constants-1 dropped,
    unknowns resolved toward the known side (rank/shape validity is
    SHAPE002's job, not ours)."""
    da, db = list(a.dims), list(b.dims)
    if len(da) < len(db):
        da, db = db, da
    out = list(da)
    for i in range(1, len(db) + 1):
        x, y = da[-i], db[-i]
        if x is None:
            out[-i] = y
        elif y is None or y == ONE:
            out[-i] = x
        elif x == ONE:
            out[-i] = y
        else:
            out[-i] = x  # assume equal (contract-checked elsewhere)
    lead = a.lead if a.lead is not None else b.lead
    return Arr(tuple(out), lead=lead)
