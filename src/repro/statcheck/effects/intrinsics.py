"""Effect classification of out-of-package callees.

The collector resolves dotted call targets through the module's import
aliases (``np.zeros`` -> ``numpy.zeros``) and asks this table what the
call does.  Three answers are possible:

* an :class:`IntrinsicSpec` — the call's effects are known (possibly
  "mutates argument 0", "aliases its input", "reads the clock", ...);
* ``None`` — the name is not an intrinsic; the analysis falls back to
  the package registry / method-name tables / unknown.

The tables are deliberately *closed-world over this repo's imports*: the
coverage acceptance test (zero unknown callees in ``winograd/``,
``perf/`` and ``netsim/``) is what keeps them honest — a new stdlib
import in a core package shows up as an ``unknown-call`` atom until it
is classified here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .lattice import CLOCK, ENV, IO, RNG, Effect


@dataclass(frozen=True)
class IntrinsicSpec:
    """What one intrinsic call does.

    ``mutates`` lists positional argument indices whose object is
    mutated; ``alias_of`` names the argument index the *result* may
    alias (``None`` = the result is fresh).
    """

    atoms: Tuple[Effect, ...] = ()
    mutates: Tuple[int, ...] = ()
    alias_of: Optional[int] = None


PURE = IntrinsicSpec()


def _io(name: str) -> IntrinsicSpec:
    return IntrinsicSpec(atoms=((IO, name),))


def _clock(name: str) -> IntrinsicSpec:
    return IntrinsicSpec(atoms=((CLOCK, name),))


def _rng(name: str) -> IntrinsicSpec:
    return IntrinsicSpec(atoms=((RNG, name),))


def _env(name: str) -> IntrinsicSpec:
    return IntrinsicSpec(atoms=((ENV, name),))


_MUT0 = IntrinsicSpec(mutates=(0,))
_ALIAS0 = IntrinsicSpec(alias_of=0)

#: Modules whose every function is effect-free and returns fresh values.
_PURE_MODULES = {
    "math", "cmath", "itertools", "functools", "collections",
    "dataclasses", "enum", "abc", "typing", "fractions", "decimal",
    "numbers", "statistics", "textwrap", "string", "struct", "operator",
    "re", "copy", "hashlib", "ast", "keyword", "token", "tokenize",
    "difflib", "unicodedata", "contextlib", "inspect", "platform",
    "scipy", "argparse",
}

#: Exact-name overrides, consulted before any prefix rule.
_EXACT = {
    # -- containers / heaps ------------------------------------------------
    "heapq.heappush": _MUT0,
    "heapq.heappop": _MUT0,
    "heapq.heapify": _MUT0,
    "heapq.heappushpop": _MUT0,
    "heapq.heapreplace": _MUT0,
    "heapq.merge": PURE,
    "heapq.nlargest": PURE,
    "heapq.nsmallest": PURE,
    "bisect.insort": _MUT0,
    "bisect.insort_left": _MUT0,
    "bisect.insort_right": _MUT0,
    "bisect.bisect": PURE,
    "bisect.bisect_left": PURE,
    "bisect.bisect_right": PURE,
    # -- serialisation: string forms pure, file forms I/O ------------------
    "json.dumps": PURE,
    "json.loads": PURE,
    "json.dump": _io("json.dump"),
    "json.load": _io("json.load"),
    "pickle.dumps": PURE,
    "pickle.loads": PURE,
    "pickle.dump": _io("pickle.dump"),
    "pickle.load": _io("pickle.load"),
    # -- os: environment vs filesystem -------------------------------------
    "os.getenv": _env("os.getenv"),
    "os.putenv": _env("os.putenv"),
    "os.unsetenv": _env("os.unsetenv"),
    "os.urandom": _rng("os.urandom"),
    "os.cpu_count": _env("os.cpu_count"),
    # -- time: sleep is observable, the rest read the clock ----------------
    "time.sleep": _io("time.sleep"),
    # -- randomness --------------------------------------------------------
    "secrets.token_bytes": _rng("secrets.token_bytes"),
    "secrets.token_hex": _rng("secrets.token_hex"),
    "secrets.randbelow": _rng("secrets.randbelow"),
    "uuid.uuid1": _rng("uuid.uuid1"),
    "uuid.uuid4": _rng("uuid.uuid4"),
    # -- pathlib constructor is pure (fs access happens via methods) -------
    "pathlib.Path": PURE,
    "pathlib.PurePath": PURE,
    # -- numpy: in-place entry points --------------------------------------
    "numpy.copyto": _MUT0,
    "numpy.put": _MUT0,
    "numpy.place": _MUT0,
    "numpy.putmask": _MUT0,
    "numpy.fill_diagonal": _MUT0,
    "numpy.ndarray.fill": _MUT0,
    # -- numpy: view-returning (result aliases the input) ------------------
    "numpy.asarray": _ALIAS0,
    "numpy.ascontiguousarray": _ALIAS0,
    "numpy.ravel": _ALIAS0,
    "numpy.reshape": _ALIAS0,
    "numpy.transpose": _ALIAS0,
    "numpy.swapaxes": _ALIAS0,
    "numpy.moveaxis": _ALIAS0,
    "numpy.rollaxis": _ALIAS0,
    "numpy.squeeze": _ALIAS0,
    "numpy.atleast_1d": _ALIAS0,
    "numpy.atleast_2d": _ALIAS0,
    "numpy.atleast_3d": _ALIAS0,
    "numpy.broadcast_to": _ALIAS0,
    "numpy.expand_dims": _ALIAS0,
    "numpy.lib.stride_tricks.as_strided": _ALIAS0,
    "numpy.lib.stride_tricks.sliding_window_view": _ALIAS0,
    # -- numpy: filesystem -------------------------------------------------
    "numpy.load": _io("numpy.load"),
    "numpy.save": _io("numpy.save"),
    "numpy.savez": _io("numpy.savez"),
    "numpy.savez_compressed": _io("numpy.savez_compressed"),
    "numpy.savetxt": _io("numpy.savetxt"),
    "numpy.loadtxt": _io("numpy.loadtxt"),
    "numpy.genfromtxt": _io("numpy.genfromtxt"),
    "numpy.fromfile": _io("numpy.fromfile"),
    "numpy.memmap": _io("numpy.memmap"),
    # -- misc --------------------------------------------------------------
    "warnings.warn": _io("warnings.warn"),
    "datetime.datetime.now": _clock("datetime.datetime.now"),
    "datetime.datetime.utcnow": _clock("datetime.datetime.utcnow"),
    "datetime.date.today": _clock("datetime.date.today"),
    "gc.collect": _io("gc.collect"),
    "platform.uname": _env("platform.uname"),
    "platform.node": _env("platform.node"),
    "socket.gethostname": _env("socket.gethostname"),
}

#: `time.<fn>` wall-clock reads (mirrors DET006's table).
_WALL_CLOCK = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}

#: Whole modules whose calls touch the outside world.
_IO_MODULES = {
    "sys", "io", "logging", "subprocess", "shutil", "tempfile",
    "pprint", "traceback", "glob", "fnmatch", "csv", "sqlite3",
    "socket", "http", "urllib", "webbrowser", "atexit", "signal",
    "multiprocessing", "threading", "importlib", "pkgutil",
    # process pools spawn workers and move pickles over pipes — every
    # entry point is I/O from the analysis's point of view
    "concurrent",
}


def classify_intrinsic(canonical: str) -> Optional[IntrinsicSpec]:
    """Effects of a call to canonical dotted name ``canonical``, or
    ``None`` when the name is not a recognised out-of-package intrinsic.

    ``numpy.random.*`` is deliberately absent: the collector classifies
    RNG entry points itself because seededness depends on the call's
    arguments, not just its name.
    """
    spec = _EXACT.get(canonical)
    if spec is not None:
        return spec
    head, _, rest = canonical.partition(".")
    if head in _PURE_MODULES:
        return PURE
    if head == "numpy":
        # Everything not special-cased above returns a fresh array/scalar.
        return PURE
    if head == "os":
        if rest.startswith("environ"):
            return _env(canonical)
        if rest.startswith("path."):
            return _io(canonical)
        return _io(canonical)
    if head == "time":
        return _clock(canonical) if rest in _WALL_CLOCK else _clock(canonical)
    if head == "datetime":
        return PURE
    if head == "random":
        # Name-only fallback; the collector pre-empts this for the
        # global-state entry points with a contextual RNG atom.
        return _rng(canonical)
    if head in _IO_MODULES:
        return _io(canonical)
    if head == "pathlib":
        return PURE
    return None


# ---------------------------------------------------------------------------
# method-name tables (attribute calls whose receiver type is unknown)
# ---------------------------------------------------------------------------

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "popleft",
    "appendleft", "clear", "update", "setdefault", "add", "discard",
    "sort", "reverse", "rotate", "fill", "put", "itemset", "resize",
    "setflags", "write_through", "__setitem__",
    "__delitem__", "extendleft", "apply_defaults",
    # argparse builder methods: they mutate the parser object, which is
    # (almost) always a local — a fresh receiver drops the atom.
    "add_argument", "add_parser", "add_subparsers", "set_defaults",
    "parse_args", "parse_known_args",
}

#: numpy ``Generator`` draws: advance the receiver's RNG state (an
#: argument-threaded generator stays deterministic, so the *effect* is a
#: receiver mutation, not a global RNG atom).
RNG_STATE_METHODS = {
    "integers", "standard_normal", "normal", "uniform", "random",
    "choice", "permutation", "permuted", "exponential", "poisson",
    "binomial", "multinomial", "shuffle", "bytes", "spawn",
}

#: Methods returning a view of their receiver (numpy mostly).
ALIAS_METHODS = {
    "reshape", "transpose", "swapaxes", "ravel", "view", "squeeze",
    "diagonal", "byteswap",
}

#: Filesystem / stream methods.
IO_METHODS = {
    "write", "writelines", "read", "readline", "readlines", "flush",
    "close", "seek", "tell", "fileno", "mkdir", "rmdir", "touch",
    "unlink", "rename", "replace", "write_text", "write_bytes",
    "read_text", "read_bytes", "exists", "is_file", "is_dir", "iterdir",
    "glob", "rglob", "stat", "resolve", "open", "samefile", "absolute",
    "expanduser", "symlink_to", "hardlink_to", "chmod", "communicate",
    "wait", "poll", "terminate", "kill",
    # concurrent.futures executor/future methods (receiver type is a
    # pool handle; submitting work and fetching results crosses a pipe)
    "submit", "shutdown", "result", "add_done_callback",
}

#: Effect-free methods (built-in containers, strings, numpy reductions,
#: hashes, Fractions, dataclass helpers, ...).  Receivers are not
#: mutated and results are fresh.
PURE_METHODS = {
    # dict / set / sequence reads
    "get", "keys", "values", "items", "copy", "index", "count",
    "difference", "union", "intersection", "symmetric_difference",
    "issubset", "issuperset", "isdisjoint", "most_common",
    # strings
    "join", "split", "rsplit", "strip", "lstrip", "rstrip",
    "startswith", "endswith", "format", "format_map", "replace",
    "lower", "upper", "title", "capitalize", "casefold", "ljust",
    "rjust", "center", "zfill", "encode", "decode", "splitlines",
    "partition", "rpartition", "find", "rfind", "rindex", "isdigit",
    "isalpha", "isalnum", "isspace", "isidentifier", "isupper",
    "islower", "removeprefix", "removesuffix", "expandtabs", "translate",
    "maketrans", "hex",
    # numbers
    "bit_length", "bit_count", "as_integer_ratio", "is_integer",
    "conjugate", "limit_denominator", "total_seconds", "isoformat",
    "strftime", "timestamp",
    # numpy (fresh-returning)
    "astype", "tobytes", "tolist", "item", "round", "clip", "cumsum",
    "cumprod", "prod", "dot", "flatten", "repeat", "nonzero", "argsort",
    "argmax", "argmin", "mean", "sum", "std", "var", "min", "max",
    "all", "any", "conj", "trace", "take", "compress", "searchsorted",
    "choose", "ptp",
    # hashlib / buffers / int codecs / dict classmethods / inspect
    "digest", "hexdigest", "getvalue", "from_bytes", "to_bytes",
    "fromkeys", "signature",
    # misc
    "as_posix", "with_suffix", "with_name", "relative_to", "is_absolute",
    "groups", "group", "groupdict", "span", "match", "search",
    "findall", "finditer", "sub", "fullmatch",
}

# ---------------------------------------------------------------------------
# builtins (plain-name calls)
# ---------------------------------------------------------------------------

PURE_BUILTINS = {
    "len", "range", "min", "max", "sum", "abs", "round", "divmod",
    "pow", "sorted", "reversed", "enumerate", "zip", "map", "filter",
    "list", "tuple", "dict", "set", "frozenset", "str", "int", "float",
    "complex", "bool", "bytes", "bytearray", "repr", "format", "hash",
    "isinstance", "issubclass", "getattr", "hasattr", "callable",
    "iter", "chr", "ord", "any", "all", "slice", "memoryview", "object",
    "type", "super", "vars", "dir", "property", "staticmethod",
    "classmethod", "ascii", "bin", "oct", "hex", "anext", "aiter",
    # exception constructors
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "AttributeError", "RuntimeError", "NotImplementedError",
    "StopIteration", "StopAsyncIteration", "AssertionError", "OSError",
    "IOError", "FileNotFoundError", "ZeroDivisionError", "ArithmeticError",
    "OverflowError", "LookupError", "NameError", "UnboundLocalError",
    "RecursionError", "TimeoutError", "SystemExit", "KeyboardInterrupt",
    "Warning", "UserWarning", "DeprecationWarning", "RuntimeWarning",
}

#: builtins that mutate their first argument.
MUTATING_BUILTINS = {"next", "setattr", "delattr"}

#: builtins that touch the outside world.
IO_BUILTINS = {
    "print", "input", "open", "exec", "eval", "compile", "breakpoint",
    "__import__", "help",
}
