"""EFF003: fault-hook dereferences escaping the ``faults`` guard.

The fault subsystem promises *zero cost when disabled*: a simulator
built with ``faults=None`` must execute exactly the fault-free fast
path.  The netsim engine upholds this by loading ``self.sim.faults``
once and branching::

    faults = self.sim.faults
    if faults is not None:
        faults.on_send(...)        # slow path, guarded
    ...
    if faults is None:
        <fast loop with no hook calls>

This pass checks the discipline statically inside ``netsim/`` sources:
any *dereference* of a faults value — attribute access, method call or
subscript on it — must be dominated by an ``is not None`` check (or
follow an ``if ... is None: return/raise/continue/break`` early exit).
Bare loads, ``is None`` comparisons and passing the value along as an
argument are not dereferences.  Parameters *named* ``faults`` are
exempt: a helper that takes the hooks explicitly documents that its
caller already guarded.

The analysis is name/chain-based, not type-based: tracked values are
local names assigned from a ``*.faults`` chain (or from another tracked
name) and pure attribute chains ending in ``.faults``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set


@dataclass(frozen=True)
class GuardFinding:
    lineno: int
    col: int
    chain: str  #: the dereferenced faults expression, dotted
    attr: str   #: the attribute/subscript accessed on it


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminates(body: Sequence[ast.stmt]) -> bool:
    """True when every path through ``body`` leaves the enclosing suite."""
    if not body:
        return False
    last = body[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break)):
        return True
    if isinstance(last, ast.If):
        return _terminates(last.body) and _terminates(last.orelse)
    return False


class _FunctionGuards:
    def __init__(self, fn: ast.FunctionDef) -> None:
        self.findings: List[GuardFinding] = []
        args = fn.args
        params = [
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        #: local names holding a (possibly-None) faults value
        self.aliases: Set[str] = set()
        #: names/chains exempt or proven non-None for the whole function
        self.entry_guarded: Set[str] = {p for p in params if p == "faults"}

    # -- faults-value recognition ------------------------------------------
    def _key(self, node: ast.expr) -> Optional[str]:
        """Dotted key when ``node`` evaluates to a tracked faults value."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        if "." not in dotted:
            if dotted in self.aliases or dotted in self.entry_guarded:
                return dotted
            return None
        if dotted.rsplit(".", 1)[-1] == "faults":
            return dotted
        return None

    def _guard_test(self, test: ast.expr) -> Optional[tuple]:
        """Recognise ``K is not None`` / ``K is None`` / bare ``K`` tests.

        Returns ``(key, positive)`` where *positive* means the true
        branch has the value non-None.
        """
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, (op, right) = test.left, (test.ops[0], test.comparators[0])
            if isinstance(right, ast.Constant) and right.value is None:
                key = self._key(left)
                if key is not None:
                    if isinstance(op, ast.IsNot):
                        return key, True
                    if isinstance(op, ast.Is):
                        return key, False
            return None
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            # `if faults is not None and ...:` guards the body too.
            return self._guard_test(test.values[0])
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            # `if faults is None or ...:` — the *false* branch implies
            # the value is non-None (short-circuit: the first operand
            # was false there).
            first = self._guard_test(test.values[0])
            if first is not None and not first[1]:
                return first
            return None
        key = self._key(test)
        if key is not None:
            return key, True  # truthiness: hooks objects are truthy
        return None

    def _scan_test(self, test: ast.expr, guarded: Set[str]) -> None:
        """Scan a condition with short-circuit semantics: in
        ``K is not None and K.attr`` (or ``K is None or K.attr``) the
        later operands only evaluate with ``K`` proven non-None."""
        if isinstance(test, ast.BoolOp):
            narrowed = set(guarded)
            for value in test.values:
                self._scan_test(value, narrowed)
                guard = self._guard_test(value)
                if guard is not None:
                    key, positive = guard
                    # ``and`` keeps evaluating while operands are true;
                    # ``or`` while they are false.
                    if positive == isinstance(test.op, ast.And):
                        narrowed.add(key)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._scan_test(test.operand, guarded)
            return
        self._scan_expr(test, guarded)

    # -- expression scanning ------------------------------------------------
    def _scan_expr(self, node: ast.expr, guarded: Set[str]) -> None:
        # Any ctx counts: storing/deleting an attribute *on* a faults
        # value dereferences it just as much as loading one.
        if isinstance(node, ast.Attribute):
            key = self._key(node.value)
            if key is not None and key not in guarded:
                self.findings.append(
                    GuardFinding(node.lineno, node.col_offset, key, node.attr)
                )
                return  # one finding per chain; children are the chain itself
        if isinstance(node, ast.Subscript):
            key = self._key(node.value)
            if key is not None and key not in guarded:
                self.findings.append(
                    GuardFinding(node.lineno, node.col_offset, key, "[...]")
                )
                return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guarded)

    def _scan_stmt_exprs(self, stmt: ast.stmt, guarded: Set[str]) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guarded)

    # -- suite walking ------------------------------------------------------
    def visit_suite(self, body: Sequence[ast.stmt], guarded: Set[str]) -> None:
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and (
                isinstance(stmt.targets[0], ast.Name)
            ):
                self._scan_expr(stmt.value, guarded)
                name = stmt.targets[0].id
                src = self._key(stmt.value)
                if src is not None:
                    self.aliases.add(name)
                    # The alias is non-None only if its source was known
                    # non-None at this point.
                    if src in guarded:
                        guarded.add(name)
                    else:
                        guarded.discard(name)
                elif name in self.aliases:
                    self.aliases.discard(name)
                    guarded.discard(name)
                continue
            if isinstance(stmt, ast.If):
                self._scan_test(stmt.test, guarded)
                guard = self._guard_test(stmt.test)
                if guard is not None:
                    key, positive = guard
                    then_g = guarded | {key} if positive else set(guarded)
                    else_g = guarded | {key} if not positive else set(guarded)
                    self.visit_suite(stmt.body, then_g)
                    self.visit_suite(stmt.orelse, else_g)
                    # Early exit on the None branch guards the rest of
                    # this suite.
                    none_body = stmt.orelse if positive else stmt.body
                    if _terminates(none_body):
                        guarded.add(key)
                else:
                    self.visit_suite(stmt.body, guarded)
                    self.visit_suite(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, guarded)
                self.visit_suite(stmt.body, guarded)
                self.visit_suite(stmt.orelse, guarded)
                continue
            if isinstance(stmt, ast.While):
                guard = self._guard_test(stmt.test)
                self._scan_test(stmt.test, guarded)
                if guard is not None and guard[1]:
                    self.visit_suite(stmt.body, guarded | {guard[0]})
                else:
                    self.visit_suite(stmt.body, guarded)
                self.visit_suite(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, guarded)
                self.visit_suite(stmt.body, guarded)
                continue
            if isinstance(stmt, ast.Try):
                self.visit_suite(stmt.body, guarded)
                for handler in stmt.handlers:
                    self.visit_suite(handler.body, guarded)
                self.visit_suite(stmt.orelse, guarded)
                self.visit_suite(stmt.finalbody, guarded)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Closures defined under a guard inherit it (they are
                # invoked from the guarded region in this codebase); a
                # nested `faults` parameter is exempt like a top-level one.
                nested_args = stmt.args
                nested_exempt = {
                    a.arg
                    for a in (
                        nested_args.posonlyargs
                        + nested_args.args
                        + nested_args.kwonlyargs
                    )
                    if a.arg == "faults"
                }
                self.visit_suite(stmt.body, guarded | nested_exempt)
                continue
            self._scan_stmt_exprs(stmt, guarded)


def _outermost_functions(tree: ast.Module):
    """Module- and class-level defs only; nested defs are handled by
    their parent's suite walk (they inherit its guard context)."""
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child
            elif isinstance(child, (ast.ClassDef, ast.If, ast.Try)):
                stack.append(child)


def check_guards(tree: ast.Module) -> List[GuardFinding]:
    """All unguarded faults dereferences in one module."""
    findings: List[GuardFinding] = []
    for node in _outermost_functions(tree):
        checker = _FunctionGuards(node)
        checker.visit_suite(node.body, set(checker.entry_guarded))
        findings.extend(checker.findings)
    return findings
