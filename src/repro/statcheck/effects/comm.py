"""COMM001: collective send/recv step conservation, checked by execution.

Static inspection cannot follow a callback chain like ``send_step ->
on_complete -> send_step`` to its fixpoint, so — exactly like the
SHAPE004/SHAPE005 exec-over-battery checks in
:mod:`repro.statcheck.shapes` — this pass *runs* each collective against
a deterministic fake simulator and checks flow conservation:

- a ``(sim, nodes, message_bytes, ...)`` collective must put exactly
  ``2 * (n - 1) * message_bytes`` on the wire (ring: ``2(n-1)`` hops per
  slice over slices summing to the message; binomial tree: ``n-1``
  reduce plus ``n-1`` broadcast sends of the full message);
- a ``(sim, nodes, bytes_per_pair, ...)`` collective must put
  ``n * (n - 1) * bytes_per_pair`` on the wire;
- every callback chain must terminate (a send-count cap converts
  runaway recursion into a finding instead of a hang) and the returned
  result must report ``completed=True`` with an accurate
  ``total_bytes_on_wire``.

Conservation is checked against the *simulator-side* byte ledger, so a
collective that under-steps (the classic ``2*n - 1`` off-by-one) or
mis-reports its own accounting is caught either way.  The module is
exec'd with its imports stripped into a sandbox of stub decorators and
a fake ``Message``/simulator pair; a module that needs more than the
sandbox offers yields an explicit "unverifiable" finding, never a
silent pass.
"""

from __future__ import annotations

import ast
import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Third-parameter names that identify a collective entry point and fix
#: its conservation law.
_SIZE_LAWS = {
    "message_bytes": lambda n, size: 2 * (n - 1) * size,
    "bytes_per_pair": lambda n, size: n * (n - 1) * size,
}

#: (n, size) battery; includes sizes the node counts do not divide, so
#: floor-division slicing loses bytes visibly.
_BATTERY: Tuple[Tuple[int, int], ...] = (
    (1, 4096),
    (2, 4096),
    (3, 1000),
    (4, 4096),
    (5, 997),
    (7, 1000),
    (8, 4096),
)

_MAX_SENDS = 100_000


@dataclass(frozen=True)
class CommFinding:
    name: str
    lineno: int
    message: str


class _SendOverflow(RuntimeError):
    pass


@dataclass
class _FakeMessage:
    src: int
    dst: int
    size_bytes: int
    tag: str = ""
    on_complete: object = None


class _FakeSim:
    """Deterministic unit-latency event simulator: every send delivers
    whole at ``max(start, now) + 1.0`` and fires ``on_complete``."""

    def __init__(self) -> None:
        self._events: List[Tuple[float, int, object]] = []
        self._seq = 0
        self.now = 0.0
        self.sends = 0
        self.delivered_bytes = 0.0

    def send(self, message, start_time=None) -> None:
        self.sends += 1
        if self.sends > _MAX_SENDS:
            raise _SendOverflow()
        start = self.now if start_time is None else float(start_time)
        deliver = max(start, self.now) + 1.0
        heapq.heappush(self._events, (deliver, self._seq, message))
        self._seq += 1

    def run(self, until=None) -> float:
        while self._events:
            if until is not None and self._events[0][0] > until:
                break
            time, _, message = heapq.heappop(self._events)
            self.now = time
            self.delivered_bytes += message.size_bytes
            callback = getattr(message, "on_complete", None)
            if callback is not None:
                callback(message, time)
        return self.now


def _stub_decorator(*args, **kwargs):
    if args and callable(args[0]) and not kwargs:
        return args[0]
    return lambda fn: fn


def _sandbox() -> Dict[str, object]:
    import dataclasses
    import typing

    namespace: Dict[str, object] = {
        "math": math,
        "dataclass": dataclasses.dataclass,
        "field": dataclasses.field,
        "shaped": _stub_decorator,
        "partitioned": _stub_decorator,
        "checked": _stub_decorator,
        "cost": _stub_decorator,
        "Message": _FakeMessage,
        "NetworkSimulator": object,
        "HardwareParams": object,
        "DEFAULT_PARAMS": object(),
    }
    for name in (
        "Optional", "Sequence", "Dict", "List", "Tuple", "Callable",
        "Iterable", "Iterator", "Mapping", "Set", "FrozenSet", "Union",
        "Any",
    ):
        namespace[name] = getattr(typing, name)
    return namespace


_ALLOWED_TOPLEVEL = (
    ast.Import,
    ast.ImportFrom,
    ast.FunctionDef,
    ast.ClassDef,
    ast.Assign,
    ast.AnnAssign,
)


def _imported_names(tree: ast.Module) -> List[str]:
    names: List[str] = []
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.append((alias.asname or alias.name).split(".")[0])
    return names


def _collective_targets(tree: ast.Module) -> List[Tuple[ast.FunctionDef, str]]:
    """Module-level defs shaped like ``(sim, nodes, <size>, ...)``."""
    out: List[Tuple[ast.FunctionDef, str]] = []
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        if (
            len(params) >= 3
            and params[0] == "sim"
            and params[1] == "nodes"
            and params[2] in _SIZE_LAWS
        ):
            out.append((node, params[2]))
    return out


def check_collectives(
    tree: ast.Module, path: str = "<string>"
) -> List[CommFinding]:
    """All conservation violations among the module's collectives."""
    targets = _collective_targets(tree)
    if not targets:
        return []

    for node in tree.body:
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # docstring / bare literal
        if not isinstance(node, _ALLOWED_TOPLEVEL):
            return [
                CommFinding(
                    fn.name, fn.lineno,
                    "unverifiable: module has top-level "
                    f"`{type(node).__name__}` statements, so the "
                    "collective cannot be exec'd for step matching",
                )
                for fn, _ in targets
            ]

    namespace = _sandbox()
    missing = object()
    for name in _imported_names(tree):
        if name == "annotations":
            continue
        namespace.setdefault(name, missing)
    stripped = ast.Module(
        body=[
            n for n in tree.body
            if not isinstance(n, (ast.Import, ast.ImportFrom))
        ],
        type_ignores=[],
    )
    try:
        exec(  # noqa: S102 — purity-gated collective module, sandboxed ns
            compile(ast.fix_missing_locations(stripped), path, "exec"),
            namespace,
        )
    except Exception as exc:  # pragma: no cover - defensive
        return [
            CommFinding(
                fn.name, fn.lineno,
                f"unverifiable: module body failed to exec ({exc!r})",
            )
            for fn, _ in targets
        ]

    findings: List[CommFinding] = []
    for fn, size_param in targets:
        law = _SIZE_LAWS[size_param]
        runner = namespace.get(fn.name)
        if not callable(runner):
            findings.append(
                CommFinding(fn.name, fn.lineno,
                            "unverifiable: exec did not produce a callable")
            )
            continue
        problem: Optional[str] = None
        for n, size in _BATTERY:
            sim = _FakeSim()
            nodes = list(range(n))
            try:
                result = runner(sim, nodes, size)
            except _SendOverflow:
                problem = (
                    f"callback chain does not terminate: n={n}, "
                    f"{size_param}={size} exceeded {_MAX_SENDS} sends"
                )
                break
            except Exception as exc:
                problem = (
                    f"unverifiable: raised {exc!r} at n={n}, "
                    f"{size_param}={size}"
                )
                break
            expected = law(n, size)
            wire = sim.delivered_bytes
            if wire != expected:
                problem = (
                    f"step conservation violated: n={n}, "
                    f"{size_param}={size} put {wire:g} bytes on the wire, "
                    f"expected {expected:g}"
                )
                break
            completed = getattr(result, "completed", missing)
            if completed is not True:
                problem = (
                    f"result.completed is {completed!r} on a fault-free "
                    f"run (n={n}, {size_param}={size})"
                )
                break
            reported = getattr(result, "total_bytes_on_wire", None)
            if reported is not None and reported != expected:
                problem = (
                    f"result.total_bytes_on_wire={reported:g} disagrees "
                    f"with the wire ledger {expected:g} (n={n}, "
                    f"{size_param}={size})"
                )
                break
        if problem is not None:
            findings.append(CommFinding(fn.name, fn.lineno, problem))
    return findings
