"""The effect lattice: atoms, joins and per-function summaries.

An *effect atom* is a ``(kind, detail)`` pair describing one observable
side channel of a function:

=================  ==========================================================
kind               meaning / detail
=================  ==========================================================
``mutates``        detail = parameter name whose argument object is mutated
``global-read``    detail = mutable module-global name that is read
``global-write``   detail = mutable module-global name that is written/rebound
``env``            detail = the environment access (``os.environ``, ...)
``rng``            detail = the nondeterministic draw (``np.random.rand``, ...)
``clock``          detail = the wall-clock read (``time.perf_counter``, ...)
``io``             detail = the filesystem/stream access (``open``, ``print``)
``unknown-call``   detail = a *named* callee the analysis could not resolve
``dynamic-call``   detail = a call through a stored callable (callback field,
                   local variable, subscript) — visible as dynamic dispatch
=================  ==========================================================

An :class:`EffectSet` is an element of the powerset lattice over atoms:
``join`` is set union, bottom is the empty set (pure), and ``leq`` is
subset order.  The interprocedural fixpoint in
:mod:`repro.statcheck.effects.analysis` only ever *joins* translated
callee summaries into callers, so every transfer function is monotone
and the fixpoint terminates on the finite per-package atom universe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

#: One effect atom.
Effect = Tuple[str, str]

MUTATES = "mutates"
GLOBAL_READ = "global-read"
GLOBAL_WRITE = "global-write"
ENV = "env"
RNG = "rng"
CLOCK = "clock"
IO = "io"
UNKNOWN_CALL = "unknown-call"
DYNAMIC_CALL = "dynamic-call"

#: Atom kinds that make a function impure *modulo its arguments* — the
#: kinds EFF001 refuses in a memoized closure.  Unknown/dynamic calls
#: are reported in summaries (and gate the coverage acceptance test)
#: but are not themselves findings.
IMPURE_KINDS = frozenset({MUTATES, GLOBAL_READ, GLOBAL_WRITE, ENV, RNG, CLOCK, IO})


class EffectSet:
    """An immutable element of the effect lattice (a frozenset of atoms
    with lattice operations spelled out)."""

    __slots__ = ("atoms",)

    def __init__(self, atoms: Iterable[Effect] = ()) -> None:
        object.__setattr__(self, "atoms", frozenset(atoms))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("EffectSet is immutable")

    # -- lattice operations ------------------------------------------------
    @classmethod
    def bottom(cls) -> "EffectSet":
        return _BOTTOM

    def join(self, other: "EffectSet") -> "EffectSet":
        if not other.atoms:
            return self
        if not self.atoms:
            return other
        return EffectSet(self.atoms | other.atoms)

    def leq(self, other: "EffectSet") -> bool:
        """Partial order: ``self`` is below ``other``."""
        return self.atoms <= other.atoms

    # -- container protocol ------------------------------------------------
    def __iter__(self) -> Iterator[Effect]:
        return iter(sorted(self.atoms))

    def __contains__(self, atom: Effect) -> bool:
        return atom in self.atoms

    def __len__(self) -> int:
        return len(self.atoms)

    def __bool__(self) -> bool:
        return bool(self.atoms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EffectSet) and self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self.atoms)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{d}" for k, d in sorted(self.atoms))
        return f"EffectSet({{{inner}}})"

    # -- queries -----------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[Effect]:
        return sorted(a for a in self.atoms if a[0] in kinds)

    @property
    def impure(self) -> List[Effect]:
        """Atoms that violate purity-modulo-arguments (EFF001's list)."""
        return sorted(a for a in self.atoms if a[0] in IMPURE_KINDS)

    @property
    def unresolved(self) -> List[Effect]:
        return sorted(a for a in self.atoms if a[0] == UNKNOWN_CALL)


_BOTTOM = EffectSet()


@dataclass
class FunctionSummary:
    """Post-fixpoint effect summary of one function definition."""

    qualname: str
    path: str
    lineno: int
    params: Tuple[str, ...]
    is_method: bool
    direct: EffectSet
    transitive: EffectSet
    #: Parameter names the return value may alias (own return exprs only).
    returns_params: Tuple[str, ...]
    #: Enclosing-scope names captured by nested defs/lambdas (their
    #: bodies are folded into this summary; listed for the JSON report).
    captures: Tuple[str, ...]
    #: True when ``@effect_free`` vouches for the function: the summary
    #: is forced to bottom and the body is not consulted.
    vouched: bool = False
    #: atom -> qualname of the function whose body introduced it (the
    #: originating definition, after translation through call chains).
    origins: Dict[Effect, str] = field(default_factory=dict)

    def origin_of(self, atom: Effect) -> str:
        return self.origins.get(atom, self.qualname)

    def to_json(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "path": self.path,
            "line": self.lineno,
            "params": list(self.params),
            "method": self.is_method,
            "vouched": self.vouched,
            "direct": [list(a) for a in self.direct],
            "transitive": [
                list(a) + [self.origin_of(a)] for a in self.transitive
            ],
            "returns_params": list(self.returns_params),
            "captures": list(self.captures),
            "pure": not self.transitive.impure,
        }


def describe(atom: Effect) -> str:
    """Human-readable rendering of one atom for finding messages."""
    kind, detail = atom
    if kind == MUTATES:
        return f"mutates argument `{detail}`"
    if kind == GLOBAL_READ:
        return f"reads mutable module global `{detail}`"
    if kind == GLOBAL_WRITE:
        return f"writes module global `{detail}`"
    if kind == ENV:
        return f"reads the process environment ({detail})"
    if kind == RNG:
        return f"draws nondeterministic randomness ({detail})"
    if kind == CLOCK:
        return f"reads the wall clock ({detail})"
    if kind == IO:
        return f"performs I/O ({detail})"
    if kind == UNKNOWN_CALL:
        return f"calls unresolved callee `{detail}`"
    return f"calls through stored callable `{detail}`"
