"""Interprocedural purity/effect inference for statcheck.

Layout:

- :mod:`.lattice` — effect atoms, the :class:`EffectSet` powerset
  lattice, and post-fixpoint :class:`FunctionSummary` records;
- :mod:`.intrinsics` — effect classifications for stdlib/numpy calls
  and method-name fallback tables;
- :mod:`.collect` — the per-file intraprocedural collector (alias
  roots, direct atoms, call descriptors);
- :mod:`.analysis` — package registry, call-graph resolution, and the
  bottom-up SCC fixpoint (:func:`analyze_path`, :func:`effect_pass`);
- :mod:`.guards` — the ``faults``-guard escape analysis behind EFF003;
- :mod:`.comm` — exec-over-battery collective step conservation
  checking behind COMM001.

The rule family built on these passes lives in
:mod:`repro.statcheck.rules.effect_rules`.
"""

from .analysis import (
    PackageAnalysis,
    analyze_path,
    analyze_source,
    effect_pass,
    solve_fixpoint,
    strongly_connected_components,
)
from .lattice import (
    IMPURE_KINDS,
    Effect,
    EffectSet,
    FunctionSummary,
    describe,
)

__all__ = [
    "Effect",
    "EffectSet",
    "FunctionSummary",
    "IMPURE_KINDS",
    "PackageAnalysis",
    "analyze_path",
    "analyze_source",
    "describe",
    "effect_pass",
    "solve_fixpoint",
    "strongly_connected_components",
]
