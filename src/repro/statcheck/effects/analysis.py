"""Package-wide interprocedural effect inference.

Builds a call graph over every definition of the enclosing package (the
same no-imports, AST-only collection discipline as the shape registry in
:mod:`repro.statcheck.shapes`), then solves a bottom-up fixpoint over
its strongly connected components:

    transitive(f) = direct(f)  JOIN  translate(transitive(g), site)
                               for every call site f -> g

``translate`` maps a callee's ``("mutates", param)`` atoms through the
call's argument alias roots into the caller's namespace (an argument
rooted at a caller parameter becomes a caller mutation; one rooted at a
module global becomes a global write; a fresh argument drops the atom).
All other atoms propagate unchanged.  Every transfer function is
monotone on the finite per-package atom universe, so the iteration
terminates (the Hypothesis suite checks both properties on random
graphs via :func:`solve_fixpoint`).

Call-site resolution order, per site:

1. package registry — module-level functions and class constructors for
   plain names; methods (joined across same-named defs) for attributes;
2. method-name tables (:mod:`.intrinsics`) for attribute calls the
   registry misses (``.append`` mutates, ``.items`` is pure, ...);
3. class-field callbacks (``message.on_complete(...)`` where
   ``on_complete`` is an annotated dataclass field) become
   ``dynamic-call`` atoms — visibly dynamic dispatch, not a resolution
   failure;
4. anything left is an ``unknown-call`` atom; the coverage acceptance
   test keeps ``winograd/``, ``perf/`` and ``netsim/`` free of them.

Functions decorated ``@effect_free`` (:func:`repro.perf.effect_free`)
are vouched: their summary is forced to bottom and their body is not
consulted — the explicit purity registration surface for
observability-only helpers like the profiler's ``phase``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .collect import CallDesc, FunctionInfo, ModuleInfo, collect_module
from .intrinsics import (
    ALIAS_METHODS,
    IO_METHODS,
    MUTATOR_METHODS,
    PURE_METHODS,
    RNG_STATE_METHODS,
)
from .lattice import (
    DYNAMIC_CALL,
    GLOBAL_WRITE,
    IO,
    MUTATES,
    UNKNOWN_CALL,
    Effect,
    EffectSet,
    FunctionSummary,
)

#: Directory names never descended into (kept in sync with the engine).
_EXCLUDED_DIRS = {
    ".git", "__pycache__", ".egg-info", "repro.egg-info", ".venv",
    "build", "dist", ".mypy_cache", ".ruff_cache",
}

TransferFn = Callable[[EffectSet], EffectSet]


# ---------------------------------------------------------------------------
# generic SCC fixpoint (also the Hypothesis test surface)
# ---------------------------------------------------------------------------


def strongly_connected_components(
    nodes: Sequence[str], edges: Dict[str, List[str]]
) -> List[List[str]]:
    """Tarjan's algorithm, iterative.  Components are emitted callees
    first (every edge leaving an emitted component targets an earlier
    one), which is exactly the order a bottom-up fixpoint wants."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work.pop()
            if child_i == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = edges.get(node, [])
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def solve_fixpoint(
    direct: Dict[str, EffectSet],
    edges: Dict[str, List[Tuple[str, TransferFn]]],
) -> Tuple[Dict[str, EffectSet], int]:
    """Bottom-up fixpoint: ``solution[k] = direct[k] JOIN transfer(
    solution[callee])`` over all edges, solved SCC by SCC.

    Returns ``(solution, sweeps)`` where ``sweeps`` counts whole-SCC
    iteration passes — the Hypothesis termination property bounds it by
    ``|SCC| * |atom universe|`` per component.
    """
    nodes = list(direct)
    plain_edges = {
        k: [callee for callee, _ in targets] for k, targets in edges.items()
    }
    solution: Dict[str, EffectSet] = dict(direct)
    sweeps = 0
    for component in strongly_connected_components(nodes, plain_edges):
        members = set(component)
        changed = True
        while changed:
            changed = False
            sweeps += 1
            for node in component:
                acc = direct[node]
                for callee, transfer in edges.get(node, ()):  # noqa: B007
                    callee_set = solution.get(callee)
                    if callee_set is not None:
                        acc = acc.join(transfer(callee_set))
                if acc != solution[node]:
                    solution[node] = acc
                    changed = True
            if not (members & {c for t in (edges.get(n, ()) for n in component)
                               for c, _ in t}):
                break  # acyclic singleton: one sweep suffices
    return solution, sweeps


# ---------------------------------------------------------------------------
# call-site resolution and translation
# ---------------------------------------------------------------------------


@dataclass
class _Node:
    key: str
    path: str
    info: FunctionInfo
    direct: Set[Effect] = field(default_factory=set)
    #: resolved edges: (callee key, call site, mode) with mode in
    #: {"func", "method", "ctor"}.
    edges: List[Tuple[str, CallDesc, str]] = field(default_factory=list)


def _arg_map(
    desc: CallDesc, callee: FunctionInfo, mode: str
) -> Dict[str, FrozenSet[Tuple[str, str]]]:
    """Callee parameter name -> caller alias roots for one call site."""
    params = list(callee.params)
    mapping: Dict[str, FrozenSet[Tuple[str, str]]] = {}
    positional = params
    if callee.is_method and params:
        if mode == "method":
            mapping[params[0]] = desc.recv_roots
            positional = params[1:]
        elif mode == "ctor":
            positional = params[1:]
    for i, roots in enumerate(desc.arg_roots):
        if i < len(positional):
            mapping.setdefault(positional[i], roots)
    for name, roots in desc.kw_roots:
        if name in params:
            mapping[name] = roots
    return mapping


def _translate(
    atoms: EffectSet,
    desc: CallDesc,
    callee: FunctionInfo,
    mode: str,
) -> EffectSet:
    """Map a callee summary into the caller's namespace at one site."""
    mapping = _arg_map(desc, callee, mode)
    out: Set[Effect] = set()
    for kind, detail in atoms:
        if kind == MUTATES:
            roots = mapping.get(detail)
            if not roots:
                continue  # fresh/unmapped argument: mutation stays local
            for base, name in roots:
                out.add((MUTATES, name) if base == "param"
                        else (GLOBAL_WRITE, name))
        else:
            out.add((kind, detail))
    return EffectSet(out)


# ---------------------------------------------------------------------------
# package analysis
# ---------------------------------------------------------------------------


@dataclass
class PackageAnalysis:
    """Fixpoint summaries for every definition under one package root."""

    root: Optional[str]
    modules: Dict[str, ModuleInfo]
    summaries: Dict[str, FunctionSummary]
    by_path: Dict[str, List[str]]
    stats: Dict[str, int]

    def functions_in(self, path: str) -> List[FunctionSummary]:
        return [self.summaries[k] for k in self.by_path.get(str(path), [])]

    def summary(self, path: str, qualname: str) -> Optional[FunctionSummary]:
        return self.summaries.get(f"{path}::{qualname}")

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "root": self.root,
            "stats": dict(self.stats),
            "functions": [
                self.summaries[k].to_json() for k in sorted(self.summaries)
            ],
        }


def _link(modules: Dict[str, ModuleInfo], root: Optional[str]) -> PackageAnalysis:
    # ---- registries -------------------------------------------------------
    name_funcs: Dict[str, List[str]] = {}
    methods: Dict[str, List[str]] = {}
    class_inits: Dict[str, List[Optional[str]]] = {}
    field_names: Set[str] = set()
    nodes: Dict[str, _Node] = {}
    by_path: Dict[str, List[str]] = {}

    for path, mod in modules.items():
        field_names |= mod.field_names
        for fninfo in mod.functions:
            key = f"{path}::{fninfo.qualname}"
            nodes[key] = _Node(key=key, path=path, info=fninfo,
                               direct=set(fninfo.direct))
            by_path.setdefault(path, []).append(key)
            if fninfo.is_method or "." in fninfo.qualname:
                methods.setdefault(fninfo.name, []).append(key)
            else:
                name_funcs.setdefault(fninfo.name, []).append(key)
        for class_name, method_names in mod.classes.items():
            init = (
                f"{path}::{class_name}.__init__"
                if "__init__" in method_names else None
            )
            class_inits.setdefault(class_name, []).append(init)

    method_keys = {k for keys in methods.values() for k in keys}

    # ---- resolve every call site -----------------------------------------
    edges_total = 0
    edges_resolved = 0
    for node in nodes.values():
        if node.info.vouched:
            node.direct = set()
            continue
        for desc in node.info.calls:
            edges_total += 1
            if desc.kind == "name":
                targets = [(k, "func") for k in name_funcs.get(desc.name, ())]
                for init_key in class_inits.get(desc.name, ()):
                    if init_key is not None:
                        targets.append((init_key, "ctor"))
                    else:
                        # Synthesised constructor (dataclass): effect-free.
                        edges_resolved += 1
                if targets:
                    edges_resolved += 1
                    for key, mode in targets:
                        node.edges.append((key, desc, mode))
                elif desc.name not in class_inits:
                    node.direct.add((UNKNOWN_CALL, desc.name))
                continue
            # attribute call
            keys = methods.get(desc.name, []) + name_funcs.get(desc.name, [])
            if keys:
                edges_resolved += 1
                for key in keys:
                    mode = "method" if key in method_keys else "func"
                    node.edges.append((key, desc, mode))
                continue
            if desc.name in PURE_METHODS or desc.name in ALIAS_METHODS:
                edges_resolved += 1
                continue
            if desc.name in MUTATOR_METHODS or desc.name in RNG_STATE_METHODS:
                edges_resolved += 1
                for base, name in desc.recv_roots:
                    node.direct.add(
                        (MUTATES, name) if base == "param"
                        else (GLOBAL_WRITE, name)
                    )
                continue
            if desc.name in IO_METHODS:
                edges_resolved += 1
                node.direct.add((IO, f".{desc.name}()"))
                continue
            if desc.name in field_names:
                edges_resolved += 1
                node.direct.add((DYNAMIC_CALL, desc.name))
                continue
            node.direct.add((UNKNOWN_CALL, f".{desc.name}()"))

    # ---- fixpoint ---------------------------------------------------------
    direct_sets = {k: EffectSet(n.direct) for k, n in nodes.items()}
    edges: Dict[str, List[Tuple[str, TransferFn]]] = {}
    for key, node in nodes.items():
        out: List[Tuple[str, TransferFn]] = []
        for callee_key, desc, mode in node.edges:
            callee_info = nodes[callee_key].info

            def transfer(
                atoms: EffectSet,
                _desc: CallDesc = desc,
                _callee: FunctionInfo = callee_info,
                _mode: str = mode,
            ) -> EffectSet:
                return _translate(atoms, _desc, _callee, _mode)

            out.append((callee_key, transfer))
        edges[key] = out

    solution, sweeps = solve_fixpoint(direct_sets, edges)

    # ---- returns_params closure (one sweep; views through package calls
    # are cut at collect time, so only the function's own returns matter).
    # ---- origins: callees-first sweep over the final solution ------------
    origins: Dict[str, Dict[Effect, str]] = {}
    plain_edges = {k: [c for c, _, _ in n.edges] for k, n in nodes.items()}
    for component in strongly_connected_components(list(nodes), plain_edges):
        for key in component:
            node = nodes[key]
            own: Dict[Effect, str] = {
                atom: node.info.qualname for atom in node.direct
            }
            for callee_key, desc, mode in node.edges:
                callee_origins = origins.get(callee_key, {})
                callee_info = nodes[callee_key].info
                translated = _translate(solution[callee_key], desc,
                                        callee_info, mode)
                for atom in translated:
                    if atom not in own:
                        # Prefer the true originating def; fall back to
                        # the callee itself inside unsettled cycles.
                        src = callee_origins
                        own[atom] = (
                            src.get(atom, callee_info.qualname)
                            if atom in solution[callee_key].atoms
                            else callee_info.qualname
                        )
            origins[key] = own

    # ---- package summaries ------------------------------------------------
    summaries: Dict[str, FunctionSummary] = {}
    unknown_functions = 0
    vouched = 0
    pure = 0
    for key, node in nodes.items():
        info = node.info
        transitive = solution[key]
        if info.vouched:
            vouched += 1
        if any(kind == UNKNOWN_CALL for kind, _ in node.direct):
            unknown_functions += 1
        summary = FunctionSummary(
            qualname=info.qualname,
            path=node.path,
            lineno=info.lineno,
            params=info.params,
            is_method=info.is_method,
            direct=EffectSet(node.direct),
            transitive=transitive,
            returns_params=tuple(sorted(info.returns_params)),
            captures=tuple(sorted(info.captures)),
            vouched=info.vouched,
            origins=origins.get(key, {}),
        )
        if not summary.transitive.impure:
            pure += 1
        summaries[key] = summary

    stats = {
        "functions": len(summaries),
        "pure": pure,
        "vouched": vouched,
        "functions_with_unknown_callees": unknown_functions,
        "call_sites": edges_total,
        "call_sites_resolved": edges_resolved,
        "fixpoint_sweeps": sweeps,
    }
    return PackageAnalysis(
        root=root,
        modules=modules,
        summaries=summaries,
        by_path=by_path,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# entry points + caching
# ---------------------------------------------------------------------------

_MOD_CACHE: Dict[str, Tuple[Tuple[int, int], Optional[ModuleInfo]]] = {}
_PKG_CACHE: Dict[str, Tuple[FrozenSet[Tuple[str, int, int]], PackageAnalysis]] = {}


def _package_root(path: Path) -> Optional[Path]:
    parent = path.resolve().parent
    if not (parent / "__init__.py").is_file():
        return None
    while (parent.parent / "__init__.py").is_file():
        parent = parent.parent
    return parent


def _module_info(path: Path) -> Optional[ModuleInfo]:
    try:
        stat = path.stat()
        key = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return None
    cached = _MOD_CACHE.get(str(path))
    if cached is not None and cached[0] == key:
        return cached[1]
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        info: Optional[ModuleInfo] = None
    else:
        info = collect_module(tree, str(path))
    _MOD_CACHE[str(path)] = (key, info)
    return info


def _package_files(root: Path) -> List[Path]:
    return sorted(
        p for p in root.rglob("*.py")
        if not any(part in _EXCLUDED_DIRS or part.endswith(".egg-info")
                   for part in p.parts)
    )


def analyze_path(path: Path) -> PackageAnalysis:
    """Analysis of the package enclosing ``path`` (or of the single file
    when it is not inside a package).  A directory argument means the
    package rooted there (its enclosing package when it is itself a
    subpackage).  Cached on file mtimes/sizes."""
    path = Path(path).resolve()
    if path.is_dir():
        if (path / "__init__.py").is_file():
            root = _package_root(path / "__init__.py")
        else:
            root = path
        files = _package_files(root)
    else:
        root = _package_root(path)
        files = _package_files(root) if root is not None else [path]
    cache_key = str(root if root is not None else path)
    state = frozenset(
        (str(p), s.st_mtime_ns, s.st_size)
        for p in files
        for s in (p.stat(),)
        if True
    )
    cached = _PKG_CACHE.get(cache_key)
    if cached is not None and cached[0] == state:
        return cached[1]
    modules: Dict[str, ModuleInfo] = {}
    for file in files:
        info = _module_info(file)
        if info is not None:
            modules[str(file)] = info
    analysis = _link(modules, str(root) if root is not None else None)
    _PKG_CACHE[cache_key] = (state, analysis)
    return analysis


def analyze_source(source: str, path: str = "<string>") -> PackageAnalysis:
    """Single-module analysis of an in-memory source (tests, stdin)."""
    tree = ast.parse(source, filename=path)
    return _link({path: collect_module(tree, path)}, None)


def effect_pass(ctx) -> PackageAnalysis:
    """Context-cached package analysis for one linted file."""
    cached = ctx.cache.get("effects")
    if cached is None:
        path = Path(ctx.path)
        if path.is_file():
            cached = analyze_path(path)
        else:
            cached = analyze_source(ctx.source, ctx.path)
        ctx.cache["effects"] = cached
    return cached
