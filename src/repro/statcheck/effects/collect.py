"""Per-file effect collection (the intraprocedural half).

For every function definition in a module this pass computes

* its *direct* effect atoms — argument mutations (subscript/attribute
  stores, augmented assigns, ``out=`` keywords, known mutator methods),
  mutable-global reads/writes, env/RNG/clock/filesystem intrinsics — and
* its *call sites* with the alias roots of every argument, so the
  interprocedural fixpoint (:mod:`.analysis`) can translate callee
  summaries into the caller's namespace.

Alias tracking is a deliberately simple root analysis: every local name
maps to a set of *roots* — ``("param", name)`` or ``("global", name)``
— with the empty set meaning "fresh" (the value cannot share storage
with an argument or a module global).  Assignments join root sets (a
name once rooted at a parameter stays rooted — flow-insensitive but
monotone, so loops need no widening beyond a second body pass), views
(``x[...]``, ``x.attr``, ``np.reshape``-style intrinsics) propagate
roots, and fresh constructors (``np.zeros``, ``.copy()``, literals,
arithmetic) cut them.

Nested functions and lambdas are *folded into their parent*: their
bodies contribute to the parent's direct effects (the closures in the
collectives are invoked from the orchestration they are defined in) and
the names they capture are recorded on the parent's summary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .intrinsics import (
    ALIAS_METHODS,
    IO_BUILTINS,
    IO_METHODS,
    MUTATING_BUILTINS,
    MUTATOR_METHODS,
    PURE_BUILTINS,
    PURE_METHODS,
    RNG_STATE_METHODS,
    classify_intrinsic,
)
from .lattice import (
    CLOCK,
    DYNAMIC_CALL,
    ENV,
    GLOBAL_READ,
    GLOBAL_WRITE,
    IO,
    MUTATES,
    RNG,
    Effect,
)

#: A root set: ("param", name) / ("global", name) members; empty = fresh.
Roots = FrozenSet[Tuple[str, str]]
FRESH: Roots = frozenset()

#: Legacy global-state numpy RNG entry points (mirrors DET001).
_NUMPY_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "standard_normal",
    "uniform", "normal", "binomial", "poisson", "exponential", "bytes",
}
#: Stdlib `random` module functions with process-global state.
_STDLIB_RANDOM = {
    "seed", "random", "randint", "randrange", "getrandbits", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "gauss",
    "normalvariate", "expovariate", "betavariate", "paretovariate",
}

#: Constructors producing mutable containers (module-global detection).
_MUTABLE_CTORS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter", "count",
}


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _canonical(dotted: str, aliases: Dict[str, str]) -> str:
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def module_aliases(tree: ast.AST) -> Dict[str, str]:
    """Names bound by imports -> canonical dotted path.

    Relative imports resolve under the ``@local.`` marker so they can
    never collide with a real stdlib module name; the analysis resolves
    them against the package registry by bare name instead.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            prefix = f"@local.{module}" if node.level else module
            for alias in node.names:
                dotted = f"{prefix}.{alias.name}" if prefix else alias.name
                aliases[alias.asname or alias.name] = dotted
    return aliases


def _decorator_base(dec: ast.expr) -> Optional[str]:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@dataclass
class CallDesc:
    """One unresolved call site, for interprocedural resolution."""

    lineno: int
    kind: str  # "name" (plain function/class) | "attr" (method-style)
    name: str  # bare callee / method name
    recv_roots: Roots = FRESH
    arg_roots: Tuple[Roots, ...] = ()
    kw_roots: Tuple[Tuple[str, Roots], ...] = ()
    star: bool = False  # *args/**kwargs present at the call


@dataclass
class FunctionInfo:
    """Raw intraprocedural facts of one definition."""

    name: str
    qualname: str
    lineno: int
    params: Tuple[str, ...]  # named parameters, in order, incl. self
    is_method: bool
    decorators: Tuple[str, ...]
    direct: Set[Effect] = field(default_factory=set)
    calls: List[CallDesc] = field(default_factory=list)
    returns_params: Set[str] = field(default_factory=set)
    captures: Set[str] = field(default_factory=set)
    vouched: bool = False

    @property
    def self_name(self) -> Optional[str]:
        if self.is_method and self.params:
            return self.params[0]
        return None


@dataclass
class ModuleInfo:
    """Everything the package analysis needs from one file."""

    path: str
    aliases: Dict[str, str]
    mutable_globals: Set[str]
    functions: List[FunctionInfo]
    #: bare names of module-level functions / classes defined here
    toplevel_functions: Set[str]
    classes: Dict[str, List[str]]  # class name -> method names
    field_names: Set[str]  # annotated class-body fields (callback slots)


# ---------------------------------------------------------------------------
# module-level scan
# ---------------------------------------------------------------------------


def _mutable_globals(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                    ast.DictComp)
        )
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee and callee.split(".")[-1] in _MUTABLE_CTORS:
                mutable = True
        if mutable:
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    # Anything rebound through a `global` declaration is mutable module
    # state no matter what its module-level initialiser looks like.
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


# ---------------------------------------------------------------------------
# per-function analyzer
# ---------------------------------------------------------------------------


def _bound_names(fn: ast.AST) -> Set[str]:
    """Every name the function binds locally (assignments, loop/with
    targets, comprehension targets, nested defs, in-function imports)."""
    bound: Set[str] = set()
    global_decls: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn:
                bound.add(node.name)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for a in (
                    args.posonlyargs + args.args + args.kwonlyargs
                ):
                    bound.add(a.arg)
                for a in (args.vararg, args.kwarg):
                    if a is not None:
                        bound.add(a.arg)
        elif isinstance(node, ast.Lambda):
            args = node.args
            for a in args.posonlyargs + args.args + args.kwonlyargs:
                bound.add(a.arg)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound - global_decls


class _FunctionAnalyzer:
    """Walks one def (plus nested defs) computing direct effects."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        info: FunctionInfo,
        aliases: Dict[str, str],
        mutable_globals: Set[str],
    ) -> None:
        self.fn = fn
        self.info = info
        self.aliases = dict(aliases)
        self.mutable_globals = mutable_globals
        self.global_decls: Set[str] = {
            name
            for node in ast.walk(fn)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        self.local_bound = _bound_names(fn) | set(info.params)
        # Names bound by in-function imports: locally bound, but still a
        # module namespace for canonicalization (``import heapq`` inside
        # a hot function is a common idiom in this tree).
        self.import_bound: Set[str] = {
            (alias.asname or alias.name).split(".")[0]
            for node in ast.walk(fn)
            if isinstance(node, (ast.Import, ast.ImportFrom))
            for alias in node.names
        }
        self.roots: Dict[str, Roots] = {
            p: frozenset({("param", p)}) for p in info.params
        }
        for a in (fn.args.vararg, fn.args.kwarg):
            if a is not None:
                self.roots[a.arg] = FRESH
        self.nested_defs: Set[str] = set()
        self.nested_params: Set[str] = set()
        self.nested_depth = 0
        self._calls_by_node: Dict[int, CallDesc] = {}

    # -- effect recording --------------------------------------------------
    def add(self, kind: str, detail: str) -> None:
        self.info.direct.add((kind, detail))

    def mutate(self, roots: Roots) -> None:
        for base, name in roots:
            if base == "param":
                self.add(MUTATES, name)
            else:
                self.add(GLOBAL_WRITE, name)

    def walk_function(self) -> None:
        for a in self.fn.args.defaults + self.fn.args.kw_defaults:
            if a is not None:
                self.eval(a)
        self.visit_body(self.fn.body)
        self.info.calls = list(self._calls_by_node.values())
        self.info.captures -= self.nested_defs

    # -- name resolution ---------------------------------------------------
    def load_name(self, name: str) -> Roots:
        if name in self.global_decls:
            if name in self.mutable_globals:
                self.add(GLOBAL_READ, name)
                return frozenset({("global", name)})
            return FRESH
        if name in self.local_bound:
            if (
                self.nested_depth > 0
                and name not in self.nested_params
                and name not in self.roots
            ):
                self.info.captures.add(name)
            return self.roots.get(name, FRESH)
        if name in self.mutable_globals:
            self.add(GLOBAL_READ, name)
            return frozenset({("global", name)})
        return FRESH

    def bind(self, name: str, roots: Roots) -> None:
        if name in self.global_decls:
            self.add(GLOBAL_WRITE, name)
            return
        # Join, never narrow: a name once rooted at a parameter stays
        # rooted, which keeps loop bodies sound without a fixpoint.
        self.roots[name] = self.roots.get(name, FRESH) | roots

    def bind_target(self, target: ast.expr, roots: Roots) -> None:
        if isinstance(target, ast.Name):
            self.bind(target.id, roots)
        elif isinstance(target, ast.Starred):
            self.bind_target(target.value, roots)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind_target(elt, roots)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self.mutate(self.eval(target.value))

    # -- expressions -------------------------------------------------------
    def eval(self, node: Optional[ast.expr]) -> Roots:
        if node is None:
            return FRESH
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                return self.load_name(node.id)
            return FRESH
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None:
                root = dotted.split(".", 1)[0]
                if (root in self.import_bound and root in self.aliases) or (
                    root not in self.local_bound
                    and root not in self.global_decls
                ):
                    canonical = _canonical(dotted, self.aliases)
                    if canonical == "os.environ" or canonical.startswith(
                        "os.environ."
                    ):
                        self.add(ENV, "os.environ")
                        return FRESH
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out: Roots = FRESH
            for elt in node.elts:
                out |= self.eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = FRESH
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            roots = self.eval(node.value)
            self.bind_target(node.target, roots)
            return roots
        if isinstance(node, ast.Lambda):
            self.visit_nested_callable(node.args, [ast.Expr(node.body)])
            return FRESH
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                iter_roots = self.eval(gen.iter)
                self.bind_target(gen.target, iter_roots)
                for cond in gen.ifs:
                    self.eval(cond)
            if isinstance(node, ast.DictComp):
                self.eval(node.key)
                self.eval(node.value)
            else:
                self.eval(node.elt)
            return FRESH
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            return self.eval(node.value) if node.value else FRESH
        # BinOp/UnaryOp/BoolOp/Compare/Constant/JoinedStr/Slice/...: the
        # result is a fresh value; still walk children for nested calls.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return FRESH

    # -- calls -------------------------------------------------------------
    def _eval_call_operands(
        self, node: ast.Call
    ) -> Tuple[Tuple[Roots, ...], Tuple[Tuple[str, Roots], ...], bool]:
        arg_roots: List[Roots] = []
        star = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                star = True
                self.eval(arg.value)
            else:
                arg_roots.append(self.eval(arg))
        kw_roots: List[Tuple[str, Roots]] = []
        for kw in node.keywords:
            roots = self.eval(kw.value)
            if kw.arg is None:
                star = True
            else:
                kw_roots.append((kw.arg, roots))
                if kw.arg == "out":
                    # numpy-style out= writes into an existing buffer no
                    # matter which ufunc is being called.
                    self.mutate(roots)
        return tuple(arg_roots), tuple(kw_roots), star

    def _record(self, node: ast.Call, desc: CallDesc) -> None:
        # id(node) only dedupes the two-pass loop revisit of one AST in
        # one walk (nodes outlive the dict); call order stays the
        # deterministic first-visit insertion order.
        self._calls_by_node[id(node)] = desc  # statcheck: ignore[DET004]

    def _rng_atom(self, canonical: str, node: ast.Call) -> Optional[str]:
        """Contextual RNG classification (None = not an RNG entry)."""
        if canonical in ("numpy.random.default_rng", "numpy.random.SeedSequence"):
            unseeded = not node.args or (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            return canonical if unseeded and not node.keywords else ""
        tail = canonical.rsplit(".", 1)[-1]
        if canonical.startswith("numpy.random.") and tail in _NUMPY_LEGACY:
            return canonical
        if canonical.startswith("random.") and tail in _STDLIB_RANDOM:
            return canonical
        if canonical == "random.Random" and not node.args:
            return canonical
        return None

    def eval_call(self, node: ast.Call) -> Roots:
        func = node.func
        arg_roots, kw_roots, star = self._eval_call_operands(node)

        def apply_intrinsic(spec) -> Roots:
            for atom in spec.atoms:
                self.info.direct.add(atom)
            for pos in spec.mutates:
                if pos < len(arg_roots):
                    self.mutate(arg_roots[pos])
            if spec.alias_of is not None and spec.alias_of < len(arg_roots):
                return arg_roots[spec.alias_of]
            return FRESH

        # --- plain-name callee -------------------------------------------
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.nested_defs:
                return FRESH  # body already folded into this summary
            if (name in self.local_bound or name in self.global_decls) and not (
                name in self.import_bound and name in self.aliases
            ):
                self.add(DYNAMIC_CALL, name)
                return FRESH
            canonical = self.aliases.get(name)
            if canonical is not None:
                rng = self._rng_atom(canonical, node)
                if rng is not None:
                    if rng:
                        self.add(RNG, rng)
                    return FRESH
                spec = classify_intrinsic(canonical)
                if spec is not None:
                    return apply_intrinsic(spec)
                bare = canonical.rsplit(".", 1)[-1]
                self._record(
                    node,
                    CallDesc(node.lineno, "name", bare,
                             arg_roots=arg_roots, kw_roots=kw_roots, star=star),
                )
                return FRESH
            if name in PURE_BUILTINS:
                return FRESH
            if name in MUTATING_BUILTINS:
                if arg_roots:
                    self.mutate(arg_roots[0])
                return FRESH
            if name in IO_BUILTINS:
                self.add(IO, f"{name}()")
                return FRESH
            if name == "globals":
                self.add(GLOBAL_READ, "globals()")
                return FRESH
            if name in ("locals", "id"):
                return FRESH
            self._record(
                node,
                CallDesc(node.lineno, "name", name,
                         arg_roots=arg_roots, kw_roots=kw_roots, star=star),
            )
            return FRESH

        # --- attribute callee --------------------------------------------
        if isinstance(func, ast.Attribute):
            attr = func.attr
            dotted = _dotted(func)
            namespace_chain = False
            if dotted is not None:
                root = dotted.split(".", 1)[0]
                namespace_chain = (
                    root in self.import_bound and root in self.aliases
                ) or (
                    root not in self.local_bound
                    and root not in self.global_decls
                    and root not in self.mutable_globals
                )
            if namespace_chain:
                canonical = _canonical(dotted, self.aliases)
                rng = self._rng_atom(canonical, node)
                if rng is not None:
                    if rng:
                        self.add(RNG, rng)
                    return FRESH
                spec = classify_intrinsic(canonical)
                if spec is not None:
                    return apply_intrinsic(spec)
                recv = FRESH
            else:
                recv = self.eval(func.value)
            self._record(
                node,
                CallDesc(node.lineno, "attr", attr, recv_roots=recv,
                         arg_roots=arg_roots, kw_roots=kw_roots, star=star),
            )
            if attr in ALIAS_METHODS:
                return recv
            return FRESH

        # --- computed callee (subscript, call result, ...) ----------------
        self.eval(func)
        self.add(DYNAMIC_CALL, f"<{type(func).__name__.lower()}>")
        return FRESH

    # -- statements --------------------------------------------------------
    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit_nested_callable(
        self, args: ast.arguments, body: Sequence[ast.stmt]
    ) -> None:
        names = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        for a in (args.vararg, args.kwarg):
            if a is not None:
                names.append(a.arg)
        added = [n for n in names if n not in self.nested_params]
        self.nested_params.update(added)
        self.nested_depth += 1
        try:
            for default in args.defaults + args.kw_defaults:
                if default is not None:
                    self.eval(default)
            self.visit_body(body)
        finally:
            self.nested_depth -= 1
            if self.nested_depth == 0:
                self.nested_params.clear()

    def visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_defs.add(stmt.name)
            self.visit_nested_callable(stmt.args, stmt.body)
            return
        if isinstance(stmt, ast.ClassDef):
            self.nested_defs.add(stmt.name)
            self.visit_body(stmt.body)
            return
        if isinstance(stmt, ast.Assign):
            roots = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind_target(target, roots)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind_target(stmt.target, self.eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            vroots = self.eval(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                current = self.roots.get(target.id, FRESH)
                if target.id in self.global_decls:
                    self.add(GLOBAL_WRITE, target.id)
                elif current:
                    # `x += ...` where x aliases a parameter: in-place for
                    # ndarrays/lists — the numpy idiom EFF002 exists for.
                    self.mutate(current)
                # In-place update: the target keeps its own roots and
                # never gains the operand's (`x += view_of_param` reads
                # the view, it does not alias it).
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                self.mutate(self.eval(target.value))
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self.mutate(self.eval(target.value))
                elif isinstance(target, ast.Name):
                    self.roots.pop(target.id, None)
            return
        if isinstance(stmt, ast.Return):
            roots = self.eval(stmt.value)
            self.info.returns_params.update(
                name for base, name in roots if base == "param"
            )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_roots = self.eval(stmt.iter)
            self.bind_target(stmt.target, iter_roots)
            # Two passes: aliases established late in the body reach
            # mutations early in it on the second sweep.
            self.visit_body(stmt.body)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                roots = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind_target(item.optional_vars, roots)
            self.visit_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self.eval(handler.type)
                self.visit_body(handler.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            if stmt.msg is not None:
                self.eval(stmt.msg)
            return
        if isinstance(stmt, ast.Raise):
            self.eval(stmt.exc)
            self.eval(stmt.cause)
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            overlay = module_aliases(ast.Module(body=[stmt], type_ignores=[]))
            self.aliases.update(overlay)
            return
        # Global/Nonlocal/Pass/Break/Continue: nothing to evaluate.


# ---------------------------------------------------------------------------
# module entry point
# ---------------------------------------------------------------------------


def _param_names(fn: ast.FunctionDef) -> Tuple[str, ...]:
    args = fn.args
    return tuple(
        a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
    )


def collect_module(tree: ast.Module, path: str) -> ModuleInfo:
    """Intraprocedural facts for every def in a parsed module."""
    aliases = module_aliases(tree)
    mutable_globals = _mutable_globals(tree)
    info = ModuleInfo(
        path=path,
        aliases=aliases,
        mutable_globals=mutable_globals,
        functions=[],
        toplevel_functions=set(),
        classes={},
        field_names=set(),
    )

    def collect_fn(fn: ast.FunctionDef, class_name: Optional[str]) -> None:
        decorators = tuple(
            d for d in (_decorator_base(dec) for dec in fn.decorator_list)
            if d is not None
        )
        is_method = class_name is not None and "staticmethod" not in decorators
        qual = f"{class_name}.{fn.name}" if class_name else fn.name
        fninfo = FunctionInfo(
            name=fn.name,
            qualname=qual,
            lineno=fn.lineno,
            params=_param_names(fn),
            is_method=is_method,
            decorators=decorators,
            vouched="effect_free" in decorators,
        )
        _FunctionAnalyzer(fn, fninfo, aliases, mutable_globals).walk_function()
        info.functions.append(fninfo)

    def walk(node: ast.AST, class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                info.classes.setdefault(child.name, [])
                for stmt in child.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        info.field_names.add(stmt.target.id)
                walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collect_fn(child, class_name)
                if class_name is None:
                    info.toplevel_functions.add(child.name)
                else:
                    info.classes.setdefault(class_name, []).append(child.name)
            elif isinstance(child, (ast.If, ast.Try)):
                walk(child, class_name)

    walk(tree, None)
    return info
