"""Shape contracts for the Winograd pipeline.

:func:`shaped` declares an array-shape contract on a function::

    @shaped("(B,I,H,W), (J,I,T,T), _, P -> (B,J,H+2*P-R+1,W+2*P-R+1), _")
    def winograd_forward(x, weights_wd, transform, pad=0): ...

The spec lists one entry per parameter (``self``/``cls`` is skipped
automatically) and one entry per returned value:

* ``(A,B,C)``    — an array (or sequence) of that shape; dims are
  symbolic expressions in the :mod:`repro.statcheck.symdims` algebra
  (``H+2*P-R+1``, ``ceildiv(H-R+1, M)``, …), ``_`` is a wildcard dim and
  a leading ``...`` matches any leading axes.
* ``N``          — a scalar (int) value bound to symbol/expression ``N``.
* ``_``          — unconstrained (non-array parameters, opaque returns).

Contracts are **zero-cost by default**: the decorator only attaches the
parsed contract as ``__shape_contract__`` and returns the function
unchanged.  The contract is consumed *statically* by the
``repro.statcheck.shapes`` abstract interpreter (rule family
``SHAPE001``–``SHAPE006``).  Set ``REPRO_CHECK_SHAPES=1`` in the
environment **before import** to additionally wrap every contracted
function with a runtime checker that unifies actual shapes against the
spec on each call and raises :class:`ShapeContractError` on mismatch.

:func:`partitioned` declares that a function returns a partition — a
sequence of ``parts`` index groups that are pairwise disjoint and
exactly cover ``range(domain)`` — which the static pass verifies over a
battery of small concrete models (``SHAPE005``).
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .statcheck.symdims import SymDim, SymDimError, parse_dim


class ContractSyntaxError(ValueError):
    """A malformed ``@shaped``/``@partitioned`` specification."""


class ShapeContractError(ValueError):
    """A runtime shape does not satisfy the declared contract."""


class PartitionContractError(ShapeContractError):
    """A runtime partition is not disjoint/covering."""


@dataclass(frozen=True)
class ArgSpec:
    """One parameter or return slot of a contract."""

    kind: str  # "skip" | "array" | "scalar"
    dims: Tuple[Optional[SymDim], ...] = ()
    ellipsis: bool = False
    expr: Optional[SymDim] = None

    def __str__(self) -> str:
        if self.kind == "skip":
            return "_"
        if self.kind == "scalar":
            return str(self.expr)
        inner = ["..."] if self.ellipsis else []
        inner += ["_" if d is None else str(d) for d in self.dims]
        return f"({', '.join(inner)})"


@dataclass(frozen=True)
class ShapeContract:
    """A parsed ``@shaped`` specification."""

    spec: str
    args: Tuple[ArgSpec, ...]
    returns: Tuple[ArgSpec, ...]


@dataclass(frozen=True)
class PartitionContract:
    """A parsed ``@partitioned`` specification."""

    domain: str
    parts: str


def _split_top_level(text: str) -> List[str]:
    """Split on commas that are not nested inside parentheses."""
    items, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ContractSyntaxError(f"unbalanced parentheses in {text!r}")
        elif ch == "," and depth == 0:
            items.append(text[start:i])
            start = i + 1
    if depth != 0:
        raise ContractSyntaxError(f"unbalanced parentheses in {text!r}")
    items.append(text[start:])
    return [item.strip() for item in items]


def _parse_entry(text: str, spec: str) -> ArgSpec:
    if text == "_":
        return ArgSpec(kind="skip")
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1].strip()
        parts = _split_top_level(inner) if inner else []
        ellipsis = False
        dims: List[Optional[SymDim]] = []
        for i, part in enumerate(parts):
            if part == "...":
                if i != 0:
                    raise ContractSyntaxError(
                        f"'...' must lead a shape tuple in {spec!r}"
                    )
                ellipsis = True
            elif part == "_":
                dims.append(None)
            else:
                try:
                    dims.append(parse_dim(part))
                except SymDimError as exc:
                    raise ContractSyntaxError(
                        f"bad dimension {part!r} in {spec!r}: {exc}"
                    ) from exc
        return ArgSpec(kind="array", dims=tuple(dims), ellipsis=ellipsis)
    try:
        return ArgSpec(kind="scalar", expr=parse_dim(text))
    except SymDimError as exc:
        raise ContractSyntaxError(f"bad entry {text!r} in {spec!r}: {exc}") from exc


def parse_spec(spec: str) -> ShapeContract:
    """Parse a full ``"args -> returns"`` contract specification."""
    if spec.count("->") != 1:
        raise ContractSyntaxError(f"contract needs exactly one '->': {spec!r}")
    left, right = spec.split("->")
    left, right = left.strip(), right.strip()
    args = tuple(_parse_entry(t, spec) for t in _split_top_level(left)) if left else ()
    if not right:
        raise ContractSyntaxError(f"contract has an empty return side: {spec!r}")
    returns = tuple(_parse_entry(t, spec) for t in _split_top_level(right))
    return ShapeContract(spec=spec, args=args, returns=returns)


# ---- cost contracts ----------------------------------------------------------

#: Standard Winograd tile-geometry let-bindings, shared by most ``@cost``
#: ``where=`` clauses.  Symbols follow the repo-wide contract convention:
#: ``H``/``W`` input height/width, ``P`` padding, ``M`` output-tile size,
#: ``R`` kernel size.  Bindings are sequential: later entries may use
#: earlier names.
TILE_GEOMETRY = (
    "T=M+R-1; OH=H+2*P-R+1; OW=W+2*P-R+1; "
    "TH=ceildiv(OH, M); TW=ceildiv(OW, M); "
    "PH=(TH-1)*M+T; PW=(TW-1)*M+T"
)


@dataclass(frozen=True)
class CostContract:
    """A parsed ``@cost`` annotation.

    ``flops``/``mem`` default to zero when not declared (and the static
    checker verifies the derived quantity *is* zero).  ``ret`` declares
    the value of a scalar-returning function (traffic helpers); for
    list-returning helpers ``ret_len``/``ret_sum`` summarize the length
    and per-component element sums instead and are verified by executing
    the (pure) function over a battery of small inputs.  ``where`` is a
    sequential let-chain (``"T=M+R-1; OH=H+2*P-R+1"``) closing derived
    symbols over the function's contract symbols.  ``assume=True`` marks
    the summary as trusted (escape hatch): nothing is derived, callers
    substitute the declared polynomials as-is.
    """

    flops: Optional[SymDim] = None
    mem: Optional[SymDim] = None
    ret: Optional[SymDim] = None
    ret_sum: Optional[Tuple[Optional[SymDim], ...]] = None
    ret_len: Optional[SymDim] = None
    where: Tuple[Tuple[str, SymDim], ...] = ()
    assume: bool = False

    def where_env(self) -> Dict[str, SymDim]:
        """The let-chain closed into one substitution map."""
        env: Dict[str, SymDim] = {}
        for name, expr in self.where:
            env[name] = expr.subs(env)
        return env

    def closed(self, expr: SymDim) -> SymDim:
        """``expr`` with every ``where`` name replaced by its binding."""
        return expr.subs(self.where_env())

    def exec_only(self) -> bool:
        """Whether the contract is a list summary (``ret_len``/``ret_sum``)
        with no polynomial to derive — verified by execution instead."""
        return (self.ret_sum is not None or self.ret_len is not None) and (
            self.flops is None and self.mem is None and self.ret is None
        )


def _parse_cost_dim(text: str, slot: str) -> SymDim:
    try:
        return parse_dim(text)
    except SymDimError as exc:
        raise ContractSyntaxError(f"bad @cost {slot}={text!r}: {exc}") from exc


def parse_cost(
    flops: Optional[str] = None,
    mem: Optional[str] = None,
    ret: Optional[str] = None,
    ret_sum: Optional[str] = None,
    ret_len: Optional[str] = None,
    where: Optional[str] = None,
    assume: bool = False,
) -> CostContract:
    """Parse the keyword form of a ``@cost`` annotation."""
    parsed_where: List[Tuple[str, SymDim]] = []
    if where:
        for binding in where.split(";"):
            binding = binding.strip()
            if not binding:
                continue
            name, eq, expr = binding.partition("=")
            name = name.strip()
            if not eq or not name.isidentifier():
                raise ContractSyntaxError(
                    f"bad @cost where binding {binding!r}: need NAME=expr"
                )
            parsed_where.append((name, _parse_cost_dim(expr, f"where:{name}")))
    sums: Optional[Tuple[Optional[SymDim], ...]] = None
    if ret_sum is not None:
        sums = tuple(
            None if part.strip() == "_" else _parse_cost_dim(part, "ret_sum")
            for part in ret_sum.split(",")
        )
    return CostContract(
        flops=None if flops is None else _parse_cost_dim(flops, "flops"),
        mem=None if mem is None else _parse_cost_dim(mem, "mem"),
        ret=None if ret is None else _parse_cost_dim(ret, "ret"),
        ret_sum=sums,
        ret_len=None if ret_len is None else _parse_cost_dim(ret_len, "ret_len"),
        where=tuple(parsed_where),
        assume=assume,
    )


def cost(
    flops: Optional[str] = None,
    mem: Optional[str] = None,
    ret: Optional[str] = None,
    ret_sum: Optional[str] = None,
    ret_len: Optional[str] = None,
    where: Optional[str] = None,
    assume: bool = False,
) -> Callable:
    """Declare the symbolic cost of a kernel (see :class:`CostContract`).

    Zero-cost: the parsed contract is attached as ``__cost_contract__``
    and the function is returned unchanged.  The ``repro.statcheck``
    ``COST`` rule family derives each annotated function's actual cost
    polynomial from its AST and checks it against this declaration.
    Quantities: ``flops`` counts floating-point operations (2 per MAC),
    ``mem`` counts bytes materialized (4 bytes/element, fp32 model).
    """
    contract = parse_cost(
        flops=flops, mem=mem, ret=ret, ret_sum=ret_sum, ret_len=ret_len,
        where=where, assume=assume,
    )

    def decorate(fn: Callable) -> Callable:
        fn.__cost_contract__ = contract
        return fn

    return decorate


def _runtime_enabled() -> bool:
    return os.environ.get("REPRO_CHECK_SHAPES", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


#: Whether contracted functions are wrapped with runtime checkers.
#: Evaluated once at import so the disabled path costs nothing per call.
RUNTIME_CHECKS = _runtime_enabled()


def shaped(spec: str) -> Callable:
    """Declare an array-shape contract (see module docstring)."""
    contract = parse_spec(spec)

    def decorate(fn: Callable) -> Callable:
        fn.__shape_contract__ = contract
        if not RUNTIME_CHECKS:
            return fn
        return checked(fn, contract)

    return decorate


def partitioned(domain: str, parts: str) -> Callable:
    """Declare a disjoint-and-covering partition contract.

    ``domain``/``parts`` name integer parameters of the decorated
    function; the result must be a sequence of ``parts`` groups whose
    union is exactly ``range(domain)`` with no element owned twice.
    """
    contract = PartitionContract(domain=domain, parts=parts)

    def decorate(fn: Callable) -> Callable:
        fn.__partition_contract__ = contract
        names = set(inspect.signature(fn).parameters)
        for param in (domain, parts):
            if param not in names:
                raise ContractSyntaxError(
                    f"@partitioned names unknown parameter {param!r} of "
                    f"{fn.__qualname__}"
                )
        if not RUNTIME_CHECKS:
            return fn
        return checked_partition(fn, contract)

    return decorate


# ---- runtime checking --------------------------------------------------------


def _positional_params(fn: Callable) -> List[str]:
    sig = inspect.signature(fn)
    names = [
        p.name
        for p in sig.parameters.values()
        if p.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _value_shape(value: object) -> Optional[Tuple[int, ...]]:
    shape = getattr(value, "shape", None)
    if shape is not None:
        return tuple(int(d) for d in shape)
    if isinstance(value, (list, tuple)):
        return (len(value),)
    return None


def _unify_dim(
    dim: Optional[SymDim], actual: int, env: Dict[str, int], where: str
) -> None:
    if dim is None:
        return
    reduced = dim.subs(env)
    value = reduced.as_const()
    if value is not None:
        if value != actual:
            raise ShapeContractError(f"{where}: expected {dim} = {value}, got {actual}")
        return
    free = reduced.free_symbols()
    if len(free) != 1:
        return  # under-determined: cannot bind yet
    (name,) = free
    linear = reduced.linear_in(name)
    if linear is None:
        return
    coeff, offset = linear
    offset_value = offset.as_const()
    if offset_value is None:
        return
    solved = (Fraction(actual) - offset_value) / coeff
    if solved.denominator != 1 or solved < 0:
        raise ShapeContractError(
            f"{where}: dim {actual} does not satisfy {dim} for integer {name}"
        )
    env[name] = int(solved)


def _unify_entry(
    entry: ArgSpec, value: object, env: Dict[str, int], where: str
) -> None:
    if entry.kind == "skip":
        return
    if entry.kind == "scalar":
        if isinstance(value, bool) or not isinstance(value, int):
            return
        _unify_dim(entry.expr, value, env, where)
        return
    shape = _value_shape(value)
    if shape is None:
        raise ShapeContractError(
            f"{where}: expected an array of shape {entry}, got {type(value).__name__}"
        )
    if entry.ellipsis:
        if len(shape) < len(entry.dims):
            raise ShapeContractError(
                f"{where}: rank {len(shape)} < {len(entry.dims)} trailing dims "
                f"of {entry}"
            )
        shape = shape[len(shape) - len(entry.dims):]
    elif len(shape) != len(entry.dims):
        raise ShapeContractError(
            f"{where}: rank {len(shape)} != contract rank {len(entry.dims)} "
            f"({entry})"
        )
    for i, (dim, actual) in enumerate(zip(entry.dims, shape)):
        _unify_dim(dim, actual, env, f"{where}[dim {i}]")


def checked(fn: Callable, contract: Optional[ShapeContract] = None) -> Callable:
    """Wrap ``fn`` with per-call runtime contract checking (used by the
    decorator when ``REPRO_CHECK_SHAPES=1``, and directly by tests)."""
    import functools

    if contract is None:
        contract = fn.__shape_contract__
    param_names = _positional_params(fn)
    sig = inspect.signature(fn)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        try:
            bound = sig.bind(*args, **kwargs)
        except TypeError:
            return fn(*args, **kwargs)  # let the call site raise naturally
        env: Dict[str, int] = {}
        values = bound.arguments
        for entry, name in zip(contract.args, param_names):
            if name in values:
                _unify_entry(entry, values[name], env, f"{fn.__qualname__}({name})")
        result = fn(*args, **kwargs)
        returns = contract.returns
        if len(returns) == 1:
            _unify_entry(returns[0], result, env, f"{fn.__qualname__} return")
        else:
            if not isinstance(result, tuple) or len(result) != len(returns):
                raise ShapeContractError(
                    f"{fn.__qualname__} return: contract declares "
                    f"{len(returns)} values, got "
                    f"{len(result) if isinstance(result, tuple) else type(result).__name__}"
                )
            for i, (entry, value) in enumerate(zip(returns, result)):
                _unify_entry(entry, value, env, f"{fn.__qualname__} return[{i}]")
        return result

    wrapper.__shape_contract__ = contract
    return wrapper


def validate_partition(
    result: Sequence[Sequence[int]], domain: int, parts: int, where: str
) -> None:
    """Assert ``result`` is a disjoint, covering partition of
    ``range(domain)`` into ``parts`` groups."""
    if len(result) != parts:
        raise PartitionContractError(
            f"{where}: {len(result)} groups, contract says {parts}"
        )
    seen: Dict[int, int] = {}
    for g, group in enumerate(result):
        for element in group:
            if element in seen:
                raise PartitionContractError(
                    f"{where}: element {element} owned by groups {seen[element]} "
                    f"and {g}"
                )
            seen[element] = g
    missing = set(range(domain)) - set(seen)
    extra = set(seen) - set(range(domain))
    if missing or extra:
        raise PartitionContractError(
            f"{where}: partition does not cover range({domain}) exactly "
            f"(missing {sorted(missing)[:4]}, extra {sorted(extra)[:4]})"
        )


def checked_partition(
    fn: Callable, contract: Optional[PartitionContract] = None
) -> Callable:
    import functools

    if contract is None:
        contract = fn.__partition_contract__
    sig = inspect.signature(fn)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        result = fn(*args, **kwargs)
        try:
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
        except TypeError:
            return result
        domain = int(bound.arguments[contract.domain])
        parts = int(bound.arguments[contract.parts])
        validate_partition(result, domain, parts, fn.__qualname__)
        return result

    wrapper.__partition_contract__ = contract
    return wrapper
