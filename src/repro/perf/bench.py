"""Perf-regression benchmark runner: ``python -m repro bench``.

Runs a registry of benchmark callables (figure sweeps plus kernel and
netsim micro-benchmarks), records wall clock per benchmark together
with the profiler's phase breakdown and the sweep-cache statistics, and
writes the result as ``BENCH_PR<k>.json`` — the perf trajectory file
this repository's future PRs regress against.

Conventions of the JSON format (schema 2):

* ``benchmarks.<name>.wall_s`` — best wall time over ``rounds`` runs.
* ``benchmarks.<name>.cold_s`` — the first round's wall time.
* ``benchmarks.<name>.rounds_s`` — every round, in run order.
* ``benchmarks.<name>.phases`` — inclusive seconds per instrumented
  phase (``kernel`` / ``netsim`` / ``model``), from the best round.
* ``benchmarks.<name>.cold_phases`` / ``cold_counters`` — the same
  breakdown from the *first* round.  For the memoized sweeps the best
  round is warm (pure cache hits, so ``phases`` is honestly empty);
  the cold entries are where the netsim/kernel seconds actually show
  up, and what the fast-path work in PR 10 is measured by.
* ``benchmarks.<name>.cache`` — sweep-cache hits/misses of that round.
* ``benchmarks.<name>.result_digest`` — sha256 of the benchmark's
  canonical row output (present for the row-producing sweeps); the
  determinism contract's observable: serial and parallel runs of the
  same sweep must agree on it bit for bit.
* ``benchmarks.<name>.parallel`` — present when the runner was given
  ``workers > 1`` and the benchmark has a sweep-point enumerator: the
  process-parallel cold run of the same sweep (see
  :mod:`repro.perf.parallel`) with per-worker hit/miss/wall stats, the
  merged phase breakdown, ``speedup_vs_cold`` against the serial cold
  round, and its own ``result_digest`` + ``digest_match`` flag.
* ``workers`` (top level) — the worker count the runner was given.
* The sweep caches are cleared once per *benchmark*, before its first
  round: ``cold_s`` is what a fresh process pays (intra-sweep
  memoization only), while ``wall_s`` measures the steady state of a
  long-lived process — sweep points are computed once per process, so
  repeated figure regeneration runs against warm caches.  The parallel
  entry clears them again, so its sweep is an apples-to-apples cold
  start sharded across processes.

``benchmarks/conftest.py`` funnels pytest-benchmark timings through
:func:`write_bench_json` as well, so there is exactly one on-disk
format.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .profiler import (
    profiling_disabled,
    profiling_enabled,
    reset_profile,
    snapshot_profile,
)

SCHEMA_VERSION = 2


# ---- benchmark registry -----------------------------------------------------
#
# Each entry is a zero-argument callable; imports stay inside the
# callables so ``repro.perf`` never imports the heavier packages at
# module load (and so repro.core can import repro.perf without cycles).
# Row-producing sweeps return their rows so the runner can digest them
# (the serial-vs-parallel bit-identity observable); micro-benchmarks
# return ``None``.


def _bench_fig7() -> Optional[List]:
    """Fig. 7 sweep: communication scaling across worker counts."""
    from ..analysis import fig07_rows

    return fig07_rows()


def _bench_fig15() -> Optional[List]:
    """Fig. 15 sweep: layer-wise speedups, 5 layers x 6 configurations."""
    from ..analysis import fig15_rows

    return fig15_rows()


def _bench_fig16() -> Optional[List]:
    """Fig. 16 sweep: weight-size scaling study."""
    from ..analysis import fig16_rows

    return fig16_rows()


def _bench_fig17() -> Optional[List]:
    """Fig. 17 sweep: full-CNN scaling, 3 networks x 11 settings."""
    from ..analysis import fig17_rows

    return fig17_rows()


def _bench_winograd_kernels() -> Optional[List]:
    """Forward + backward of a mid-sized Winograd layer (numeric path)."""
    import numpy as np

    from ..winograd import make_transform
    from ..winograd.conv import winograd_backward, winograd_forward

    transform = make_transform(4, 3)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 32, 28, 28))
    weights = rng.standard_normal((32, 32, transform.tile, transform.tile))
    y, cache = winograd_forward(x, weights, transform, pad=1)
    winograd_backward(rng.standard_normal(y.shape), weights, transform, cache)
    return None


def _bench_netsim_allreduce() -> Optional[List]:
    """Event-engine ring all-reduce, 16 nodes x 500 kB."""
    from ..netsim import NetworkSimulator, ring, ring_allreduce
    from ..params import DEFAULT_PARAMS

    sim = NetworkSimulator(
        ring(16), packet_bytes=DEFAULT_PARAMS.collective_packet_bytes
    )
    ring_allreduce(sim, list(range(16)), 500_000)
    return None


def _bench_netsim_all_to_all() -> Optional[List]:
    """Event-engine all-to-all on a 4x4 FBFLY cluster, 10 kB per pair."""
    from ..netsim import NetworkSimulator, all_to_all, flattened_butterfly_2d

    sim = NetworkSimulator(flattened_butterfly_2d(4, 4))
    all_to_all(sim, list(range(16)), 10_000)
    return None


def _bench_faults_degraded_allreduce() -> Optional[List]:
    """Resilient all-reduce on the 16-ring: fault-free baseline plus a
    one-dead-worker detect/splice/re-run recovery."""
    from ..faults import FaultPlan, WorkerFault
    from ..faults.resilience import baseline_ring_allreduce, resilient_ring_allreduce
    from ..netsim.reconfiguration import reconfigure

    baseline_machine = reconfigure(16, 16, 16)
    baseline_ring_allreduce(baseline_machine, 0, 64 * 1024)
    machine = reconfigure(16, 16, 16)
    ring = machine.logical_rings[0]
    plan = FaultPlan(seed=0, worker_faults=(WorkerFault(worker=ring[8]),))
    result = resilient_ring_allreduce(machine, 0, 64 * 1024, plan)
    assert result.completed and result.recovered
    return None


def _bench_faults_battery() -> Optional[List]:
    """Full fault battery: every scenario on every paper grid (the
    ``-m slow`` scenario sweep, driven through the memoized kernel)."""
    from ..analysis import fault_degradation_rows

    return fault_degradation_rows()


def _bench_netsim_battery() -> Optional[List]:
    """Netsim fast-path battery: collectives on the paper grids, raw
    multi-hop flows, and a flit-level worm, returned as canonical rows.

    Every value in the rows is an engine-produced float, so the row
    digest is the fast-path equivalence observable: running this
    benchmark with ``REPRO_NETSIM_REFERENCE=1`` must produce the same
    ``result_digest`` byte for byte (CI's bench-smoke diffs the two)."""
    from ..netsim import Message, NetworkSimulator, all_to_all, ring, ring_allreduce
    from ..netsim.topology import hybrid
    from ..netsim.wormhole import WormholeSimulator
    from ..params import DEFAULT_PARAMS

    rows: List = []

    def record(case: str, op: str, result) -> None:
        rows.append(
            {
                "case": case,
                "op": op,
                "finish_time_s": result.finish_time_s,
                "bytes_on_wire": result.total_bytes_on_wire,
                "messages": result.messages,
                "completed": result.completed,
            }
        )

    # Collectives on the tier-1 paper grids: the group ring carries the
    # all-reduce, the cluster leaders carry the all-to-all.
    for num_groups, num_clusters in ((16, 16), (4, 64)):
        case = f"{num_groups}x{num_clusters}"
        topology, layout = hybrid(num_groups, num_clusters, DEFAULT_PARAMS)
        record(
            case,
            "ring_allreduce",
            ring_allreduce(
                NetworkSimulator(topology), layout.group_members(0), 64 * 1024
            ),
        )
        record(
            case,
            "all_to_all",
            all_to_all(
                NetworkSimulator(topology), layout.cluster_members(0), 10_000
            ),
        )

    # Raw flows: multi-hop coalescing plus staggered contention fallback.
    sim = NetworkSimulator(ring(16))
    completions: List = []
    for index, (src, dst, size, start) in enumerate(
        [(0, 5, 200_000, 0.0), (8, 12, 50_000, 0.0), (3, 4, 1_000, 5e-6)]
    ):
        sim.send(
            Message(
                src=src,
                dst=dst,
                size_bytes=size,
                on_complete=lambda _m, t, i=index: completions.append((i, t)),
            ),
            start_time=start,
        )
    sim.run()
    rows.append(
        {"case": "ring16", "op": "raw_flows",
         "completions": completions, "now": sim.now}
    )

    # Flit level: one single-hop worm (the vectorised wormhole regime).
    worm = WormholeSimulator(ring(8))
    finishes: List[float] = []
    worm.send(0, 1, 64 * 1024, on_delivered=finishes.append)
    worm.run()
    rows.append(
        {"case": "ring8", "op": "wormhole_single_worm",
         "finish_time_s": finishes[0], "flits": worm.flits_delivered}
    )
    return rows


def _bench_planner_battery() -> Optional[List]:
    """Planner battery: greedy vs DP chain totals for both paper
    workloads across every transition preset."""
    from ..analysis import planner_rows

    return planner_rows()


BENCHMARKS: Dict[str, Callable[[], Optional[List]]] = {
    "fig7": _bench_fig7,
    "fig15": _bench_fig15,
    "fig16": _bench_fig16,
    "fig17": _bench_fig17,
    "winograd_kernels": _bench_winograd_kernels,
    "netsim_allreduce": _bench_netsim_allreduce,
    "netsim_all_to_all": _bench_netsim_all_to_all,
    "faults_degraded_allreduce": _bench_faults_degraded_allreduce,
    "faults_battery": _bench_faults_battery,
    "netsim_battery": _bench_netsim_battery,
    "planner_battery": _bench_planner_battery,
}


# ---- sweep-point enumerators ------------------------------------------------
#
# For each parallelisable benchmark: the exact set of memoized-kernel
# evaluations its sweep performs, as dispatchable SweepPoints.  The
# enumerator mirrors the figure driver's call pattern (all-positional,
# same defaults), so after ``run_points`` pre-warms the caches the
# serial replay is 100% hits — which is what makes parallel output
# byte-identical to serial output.


def _points_fig15() -> List:
    from ..core import table4_configs, w_dp
    from ..core.comm_model import DEFAULT_FACTORS
    from ..core.dynamic_clustering import _choose_clustering_cached
    from ..params import DEFAULT_PARAMS
    from ..workloads import five_layers
    from .parallel import sweep_point

    points = []
    for layer in five_layers():
        for config in [w_dp()] + list(table4_configs()):
            points.append(
                sweep_point(
                    _choose_clustering_cached,
                    layer, 256, config, 256, DEFAULT_PARAMS, DEFAULT_FACTORS,
                )
            )
    return points


def _points_fig16() -> List:
    from ..core import table4_configs, w_dp
    from ..core.comm_model import DEFAULT_FACTORS
    from ..core.dynamic_clustering import _choose_clustering_cached
    from ..params import DEFAULT_PARAMS
    from ..workloads import five_layers
    from .parallel import sweep_point

    points = []
    for kernel in (3, 5):
        for base_layer in five_layers():
            layer = base_layer.with_kernel(kernel)
            for config in [w_dp()] + list(table4_configs()):
                points.append(
                    sweep_point(
                        _choose_clustering_cached,
                        layer, 256, config, 256, DEFAULT_PARAMS, DEFAULT_FACTORS,
                    )
                )
    return points


def _points_fig17() -> List:
    from ..core import w_dp, w_mp_plus_plus
    from ..core.comm_model import DEFAULT_FACTORS
    from ..core.dynamic_clustering import _choose_clustering_cached
    from ..params import entire_cnn_params
    from ..workloads import table1_networks
    from .parallel import sweep_point

    params = entire_cnn_params()
    points = []
    for net in table1_networks():
        for layer in net.conv_layers:
            for workers in (1, 4, 16, 64, 256):
                for config in (w_dp(), w_mp_plus_plus()):
                    points.append(
                        sweep_point(
                            _choose_clustering_cached,
                            layer, 256, config, workers, params, DEFAULT_FACTORS,
                        )
                    )
    return points


def _points_faults_battery() -> List:
    from ..core.config import PAPER_GRIDS
    from ..faults.scenarios import _scenario_grid_row_cached, scenario_names
    from ..params import DEFAULT_PARAMS
    from .parallel import sweep_point

    points = []
    for scenario in scenario_names():
        for num_groups, num_clusters in PAPER_GRIDS:
            points.append(
                sweep_point(
                    _scenario_grid_row_cached,
                    scenario, num_groups, num_clusters, 0, 64 * 1024,
                    DEFAULT_PARAMS,
                )
            )
    return points


def _points_planner_battery() -> List:
    from ..analysis.planner import _BATTERY_NETWORKS, _BATTERY_PRESETS
    from ..core import w_mp_plus_plus
    from ..core.comm_model import DEFAULT_FACTORS
    from ..core.dynamic_clustering import _choose_clustering_cached
    from ..params import DEFAULT_PARAMS
    from ..planner import preset
    from ..planner.solver import _plan_network_cached
    from ..planner.strategy import DEFAULT_KNOBS, _layer_candidates_cached
    from .parallel import sweep_point

    config = w_mp_plus_plus()
    points = []
    for _name, build in _BATTERY_NETWORKS:
        net = build()
        layers = tuple(net.conv_layers)
        for layer in layers:
            points.append(
                sweep_point(
                    _layer_candidates_cached,
                    layer, 256, config, 256, DEFAULT_KNOBS,
                    DEFAULT_PARAMS, DEFAULT_FACTORS,
                )
            )
            points.append(
                sweep_point(
                    _choose_clustering_cached,
                    layer, 256, config, 256, DEFAULT_PARAMS, DEFAULT_FACTORS,
                )
            )
        for preset_name in _BATTERY_PRESETS:
            points.append(
                sweep_point(
                    _plan_network_cached,
                    net.name, layers, 256, config, 256, DEFAULT_KNOBS,
                    preset(preset_name), "time", "dp", 4,
                    DEFAULT_PARAMS, DEFAULT_FACTORS,
                )
            )
    return points


POINT_ENUMERATORS: Dict[str, Callable[[], List]] = {
    "fig15": _points_fig15,
    "fig16": _points_fig16,
    "fig17": _points_fig17,
    "faults_battery": _points_faults_battery,
    "planner_battery": _points_planner_battery,
}


# ---- machine stamp ----------------------------------------------------------


def collect_machine_info() -> Dict:
    """Machine + lint state stamp tying perf numbers to their context."""
    info: Dict = {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }
    try:
        import numpy

        info["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        pass
    try:
        from ..statcheck import check_paths

        src = Path(__file__).resolve().parents[1]
        findings = check_paths([src])
        info["statcheck_findings"] = len(findings)
        info["statcheck_errors"] = sum(
            1 for f in findings if f.severity.value == "error"
        )
    except Exception:  # pragma: no cover - lint state is best-effort
        pass
    return info


# ---- runner -----------------------------------------------------------------


def _sweep_caches() -> List:
    """Every registered process-wide sweep cache (for cold-start resets
    and hit/miss reporting) — derived from ``MEMOIZED_SWEEPS``, so a
    newly registered kernel is covered without touching this module."""
    from .parallel import import_sweep_modules, registered_caches

    import_sweep_modules()
    return registered_caches()


def _rows_digest(rows: Optional[List]) -> Optional[str]:
    """sha256 of a sweep's canonical row serialisation (None for the
    micro-benchmarks, which produce no rows)."""
    if rows is None:
        return None
    payload = json.dumps(rows, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _parallel_entry(
    name: str,
    fn: Callable[[], Optional[List]],
    workers: int,
    cache_dir: Optional[Path],
    caches: List,
    cold_s: float,
    serial_digest: Optional[str],
) -> Dict:
    """Cold parallel run of one sweep: pre-warm via ``run_points``,
    replay serially, compare digests against the serial round."""
    from .parallel import run_points

    points = POINT_ENUMERATORS[name]()
    for cache in caches:
        cache.clear()
    reset_profile()
    start = time.perf_counter()
    stats = run_points(points, workers=workers, cache_dir=cache_dir, profile=True)
    value = fn()
    wall_s = time.perf_counter() - start
    digest = _rows_digest(value)
    entry: Dict = {
        "workers": stats["workers"],
        "points": stats["points"],
        "unique_points": stats["unique_points"],
        "recovered": stats["recovered"],
        "sweep_wall_s": stats["wall_s"],
        "wall_s": wall_s,
        "speedup_vs_cold": (cold_s / wall_s) if wall_s else 0.0,
        "phases": {
            phase_name: data["seconds"]
            for phase_name, data in snapshot_profile().get("phases", {}).items()
        },
        "worker_stats": [
            {
                key: ws[key]
                for key in ("worker", "points", "hits", "misses", "wall_s",
                            "completed")
                if key in ws
            }
            for ws in stats["worker_stats"]
        ],
    }
    if digest is not None:
        entry["result_digest"] = digest
        entry["digest_match"] = digest == serial_digest
    return entry


def run_benchmarks(
    subset: Optional[List[str]] = None,
    rounds: int = 3,
    workers: int = 1,
    cache_dir: Optional[Path] = None,
) -> Dict:
    """Run benchmarks and return the schema-2 result document.

    With ``workers > 1``, every benchmark that has a sweep-point
    enumerator additionally gets a cold *parallel* run (sharded across
    ``workers`` processes through the shared disk cache at
    ``cache_dir``, or a private temporary directory) recorded under its
    ``parallel`` key — including the serial-vs-parallel digest match
    that the determinism contract promises.
    """
    names = list(BENCHMARKS) if not subset else list(subset)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmarks {unknown}; choose from {sorted(BENCHMARKS)}"
        )
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    caches = _sweep_caches()
    results: Dict[str, Dict] = {}
    profiling_enabled()
    try:
        for name in names:
            fn = BENCHMARKS[name]
            rounds_s: List[float] = []
            best_s = float("inf")
            best_profile: Dict = {}
            best_cache: Dict = {}
            serial_digest: Optional[str] = None
            # Cold start per benchmark; later rounds run warm (see the
            # module docstring for the cold_s / wall_s convention).
            for cache in caches:
                cache.clear()
            cold_profile: Dict = {}
            for index in range(rounds):
                reset_profile()
                hits_before = sum(c.hits for c in caches)
                misses_before = sum(c.misses for c in caches)
                start = time.perf_counter()
                value = fn()
                elapsed = time.perf_counter() - start
                rounds_s.append(elapsed)
                if index == 0:
                    serial_digest = _rows_digest(value)
                    cold_profile = snapshot_profile()
                if elapsed < best_s:
                    best_s = elapsed
                    best_profile = snapshot_profile()
                    best_cache = {
                        "hits": sum(c.hits for c in caches) - hits_before,
                        "misses": sum(c.misses for c in caches) - misses_before,
                    }
            entry: Dict = {
                "wall_s": best_s,
                "cold_s": rounds_s[0],
                "rounds_s": rounds_s,
                "phases": {
                    phase_name: data["seconds"]
                    for phase_name, data in best_profile.get("phases", {}).items()
                },
                "counters": best_profile.get("counters", {}),
                "cold_phases": {
                    phase_name: data["seconds"]
                    for phase_name, data in cold_profile.get("phases", {}).items()
                },
                "cold_counters": cold_profile.get("counters", {}),
                "cache": best_cache,
            }
            if serial_digest is not None:
                entry["result_digest"] = serial_digest
            if workers > 1 and name in POINT_ENUMERATORS:
                entry["parallel"] = _parallel_entry(
                    name, fn, workers, cache_dir, caches,
                    cold_s=rounds_s[0], serial_digest=serial_digest,
                )
            results[name] = entry
    finally:
        profiling_disabled()
        reset_profile()
    return {
        "schema": SCHEMA_VERSION,
        "machine": collect_machine_info(),
        "workers": workers,
        "benchmarks": results,
    }


def write_bench_json(document: Dict, path: Path) -> Path:
    """Write a schema-2 benchmark document (stamping schema/machine if
    the caller provided bare benchmark entries)."""
    if "benchmarks" not in document:
        document = {"benchmarks": document}
    document.setdefault("schema", SCHEMA_VERSION)
    document.setdefault("machine", collect_machine_info())
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def format_results(document: Dict) -> str:
    """Human-readable table of a result document."""
    lines = [f"{'benchmark':<20} {'wall_s':>10}  phase breakdown"]
    for name, entry in document["benchmarks"].items():
        phases = entry.get("phases", {})
        tag = ""
        if not phases and entry.get("cold_phases"):
            # Warm best round with a memoized sweep: the cold round is
            # where the instrumented work happened.
            phases = entry["cold_phases"]
            tag = " (cold)"
        breakdown = ", ".join(
            f"{phase_name}={seconds:.4f}s{tag}"
            for phase_name, seconds in phases.items()
        )
        cache = entry.get("cache") or {}
        if cache.get("hits") or cache.get("misses"):
            breakdown += (
                f"  [cache {cache.get('hits', 0)} hits"
                f" / {cache.get('misses', 0)} misses]"
            )
        parallel = entry.get("parallel")
        if parallel:
            match = parallel.get("digest_match")
            breakdown += (
                f"  [parallel x{parallel['workers']}"
                f" {parallel['speedup_vs_cold']:.2f}x"
                + ("" if match is None else f" identical={match}")
                + "]"
            )
        lines.append(f"{name:<20} {entry['wall_s']:>10.4f}  {breakdown}")
    return "\n".join(lines)
