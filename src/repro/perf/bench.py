"""Perf-regression benchmark runner: ``python -m repro bench``.

Runs a registry of benchmark callables (figure sweeps plus kernel and
netsim micro-benchmarks), records wall clock per benchmark together
with the profiler's phase breakdown and the sweep-cache statistics, and
writes the result as ``BENCH_PR<k>.json`` — the perf trajectory file
this repository's future PRs regress against.

Conventions of the JSON format (schema 1):

* ``benchmarks.<name>.wall_s`` — best wall time over ``rounds`` runs.
* ``benchmarks.<name>.cold_s`` — the first round's wall time.
* ``benchmarks.<name>.rounds_s`` — every round, in run order.
* ``benchmarks.<name>.phases`` — inclusive seconds per instrumented
  phase (``kernel`` / ``netsim`` / ``model``), from the best round.
* ``benchmarks.<name>.cache`` — sweep-cache hits/misses of that round.
* The sweep caches are cleared once per *benchmark*, before its first
  round: ``cold_s`` is what a fresh process pays (intra-sweep
  memoization only), while ``wall_s`` measures the steady state of a
  long-lived process — sweep points are computed once per process, so
  repeated figure regeneration runs against warm caches.

``benchmarks/conftest.py`` funnels pytest-benchmark timings through
:func:`write_bench_json` as well, so there is exactly one on-disk
format.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .profiler import (
    profiling_disabled,
    profiling_enabled,
    reset_profile,
    snapshot_profile,
)

SCHEMA_VERSION = 1


# ---- benchmark registry -----------------------------------------------------
#
# Each entry is a zero-argument callable; imports stay inside the
# callables so ``repro.perf`` never imports the heavier packages at
# module load (and so repro.core can import repro.perf without cycles).


def _bench_fig7() -> None:
    """Fig. 7 sweep: communication scaling across worker counts."""
    from ..analysis import fig07_rows

    fig07_rows()


def _bench_fig15() -> None:
    """Fig. 15 sweep: layer-wise speedups, 5 layers x 6 configurations."""
    from ..analysis import fig15_rows

    fig15_rows()


def _bench_fig16() -> None:
    """Fig. 16 sweep: weight-size scaling study."""
    from ..analysis import fig16_rows

    fig16_rows()


def _bench_fig17() -> None:
    """Fig. 17 sweep: full-CNN scaling, 3 networks x 11 settings."""
    from ..analysis import fig17_rows

    fig17_rows()


def _bench_winograd_kernels() -> None:
    """Forward + backward of a mid-sized Winograd layer (numeric path)."""
    import numpy as np

    from ..winograd import make_transform
    from ..winograd.conv import winograd_backward, winograd_forward

    transform = make_transform(4, 3)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 32, 28, 28))
    weights = rng.standard_normal((32, 32, transform.tile, transform.tile))
    y, cache = winograd_forward(x, weights, transform, pad=1)
    winograd_backward(rng.standard_normal(y.shape), weights, transform, cache)


def _bench_netsim_allreduce() -> None:
    """Event-engine ring all-reduce, 16 nodes x 500 kB."""
    from ..netsim import NetworkSimulator, ring, ring_allreduce
    from ..params import DEFAULT_PARAMS

    sim = NetworkSimulator(
        ring(16), packet_bytes=DEFAULT_PARAMS.collective_packet_bytes
    )
    ring_allreduce(sim, list(range(16)), 500_000)


def _bench_netsim_all_to_all() -> None:
    """Event-engine all-to-all on a 4x4 FBFLY cluster, 10 kB per pair."""
    from ..netsim import NetworkSimulator, all_to_all, flattened_butterfly_2d

    sim = NetworkSimulator(flattened_butterfly_2d(4, 4))
    all_to_all(sim, list(range(16)), 10_000)


def _bench_faults_degraded_allreduce() -> None:
    """Resilient all-reduce on the 16-ring: fault-free baseline plus a
    one-dead-worker detect/splice/re-run recovery."""
    from ..faults import FaultPlan, WorkerFault
    from ..faults.resilience import baseline_ring_allreduce, resilient_ring_allreduce
    from ..netsim.reconfiguration import reconfigure

    baseline_machine = reconfigure(16, 16, 16)
    baseline_ring_allreduce(baseline_machine, 0, 64 * 1024)
    machine = reconfigure(16, 16, 16)
    ring = machine.logical_rings[0]
    plan = FaultPlan(seed=0, worker_faults=(WorkerFault(worker=ring[8]),))
    result = resilient_ring_allreduce(machine, 0, 64 * 1024, plan)
    assert result.completed and result.recovered


BENCHMARKS: Dict[str, Callable[[], None]] = {
    "fig7": _bench_fig7,
    "fig15": _bench_fig15,
    "fig16": _bench_fig16,
    "fig17": _bench_fig17,
    "winograd_kernels": _bench_winograd_kernels,
    "netsim_allreduce": _bench_netsim_allreduce,
    "netsim_all_to_all": _bench_netsim_all_to_all,
    "faults_degraded_allreduce": _bench_faults_degraded_allreduce,
}


# ---- machine stamp ----------------------------------------------------------


def collect_machine_info() -> Dict:
    """Machine + lint state stamp tying perf numbers to their context."""
    info: Dict = {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }
    try:
        import numpy

        info["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        pass
    try:
        from ..statcheck import check_paths

        src = Path(__file__).resolve().parents[1]
        findings = check_paths([src])
        info["statcheck_findings"] = len(findings)
        info["statcheck_errors"] = sum(
            1 for f in findings if f.severity.value == "error"
        )
    except Exception:  # pragma: no cover - lint state is best-effort
        pass
    return info


# ---- runner -----------------------------------------------------------------


def _sweep_caches() -> List:
    """Every registered process-wide sweep cache (for cold-start resets
    and hit/miss reporting)."""
    from ..core import dynamic_clustering, perf_model

    return [
        perf_model.evaluate_layer_cached.cache,
        dynamic_clustering._choose_clustering_cached.cache,
    ]


def run_benchmarks(
    subset: Optional[List[str]] = None,
    rounds: int = 3,
) -> Dict:
    """Run benchmarks and return the schema-1 result document."""
    names = list(BENCHMARKS) if not subset else list(subset)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmarks {unknown}; choose from {sorted(BENCHMARKS)}"
        )
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    caches = _sweep_caches()
    results: Dict[str, Dict] = {}
    profiling_enabled()
    try:
        for name in names:
            fn = BENCHMARKS[name]
            rounds_s: List[float] = []
            best_s = float("inf")
            best_profile: Dict = {}
            best_cache: Dict = {}
            # Cold start per benchmark; later rounds run warm (see the
            # module docstring for the cold_s / wall_s convention).
            for cache in caches:
                cache.clear()
            for _ in range(rounds):
                reset_profile()
                hits_before = sum(c.hits for c in caches)
                misses_before = sum(c.misses for c in caches)
                start = time.perf_counter()
                fn()
                elapsed = time.perf_counter() - start
                rounds_s.append(elapsed)
                if elapsed < best_s:
                    best_s = elapsed
                    best_profile = snapshot_profile()
                    best_cache = {
                        "hits": sum(c.hits for c in caches) - hits_before,
                        "misses": sum(c.misses for c in caches) - misses_before,
                    }
            results[name] = {
                "wall_s": best_s,
                "cold_s": rounds_s[0],
                "rounds_s": rounds_s,
                "phases": {
                    phase_name: data["seconds"]
                    for phase_name, data in best_profile.get("phases", {}).items()
                },
                "counters": best_profile.get("counters", {}),
                "cache": best_cache,
            }
    finally:
        profiling_disabled()
        reset_profile()
    return {
        "schema": SCHEMA_VERSION,
        "machine": collect_machine_info(),
        "benchmarks": results,
    }


def write_bench_json(document: Dict, path: Path) -> Path:
    """Write a schema-1 benchmark document (stamping schema/machine if
    the caller provided bare benchmark entries)."""
    if "benchmarks" not in document:
        document = {"benchmarks": document}
    document.setdefault("schema", SCHEMA_VERSION)
    document.setdefault("machine", collect_machine_info())
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def format_results(document: Dict) -> str:
    """Human-readable table of a result document."""
    lines = [f"{'benchmark':<20} {'wall_s':>10}  phase breakdown"]
    for name, entry in document["benchmarks"].items():
        phases = entry.get("phases", {})
        breakdown = ", ".join(
            f"{phase_name}={seconds:.4f}s" for phase_name, seconds in phases.items()
        )
        cache = entry.get("cache") or {}
        if cache.get("hits") or cache.get("misses"):
            breakdown += (
                f"  [cache {cache.get('hits', 0)} hits"
                f" / {cache.get('misses', 0)} misses]"
            )
        lines.append(f"{name:<20} {entry['wall_s']:>10.4f}  {breakdown}")
    return "\n".join(lines)
