"""Content-hash memoization for pure sweep evaluations.

The figure and ablation sweeps evaluate the same ``(layer, grid,
batch)`` perf-model points thousands of times — per configuration, per
worker count, per network — and every evaluation is a pure function of
a handful of (mostly frozen) dataclasses.  :func:`memoize_sweep` caches
those evaluations behind a *content* key: two calls hit the same entry
exactly when every field of every argument (including nested dataclass
fields) is equal, so mutating any knob of a config invalidates the key
by construction.

Cached results are shared between callers and must be treated as
immutable; every current consumer only reads them.

Keys are built by :func:`canonicalize`, which recurses structurally and
therefore needs no per-type registration — but expensive-to-recurse
types (e.g. :class:`~repro.winograd.cook_toom.WinogradTransform`, whose
exact-Fraction matrices are fully determined by ``(m, r)``) can install
a cheaper canonical form with :func:`register_canonical`.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import os
import pickle
from dataclasses import fields, is_dataclass
from fractions import Fraction
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

_CANONICAL_HOOKS: Dict[type, Callable[[Any], Any]] = {}

#: Every function registered through :func:`memoize_sweep`, by
#: qualified name.  The statcheck effect suite (EFF001) verifies each
#: entry pure; tests iterate this to assert the registry and the
#: static pass agree on what is memoized.
MEMOIZED_SWEEPS: Dict[str, Callable] = {}


def effect_free(fn: Callable) -> Callable:
    """Vouch that ``fn`` is effect-free for the purposes of static
    effect inference (``repro.statcheck.effects``).

    The analysis treats a vouched function's summary as pure without
    reading its body.  Reserve this for observability-only helpers
    whose effects are *designed* to be invisible to cached results —
    the profiler's ``phase``/``counter_add`` counters are the canonical
    case.  A function whose effects feed back into return values must
    never be vouched; the seeded-mutation tests exist to keep that
    temptation expensive.
    """
    fn.__statcheck_effect_free__ = True
    return fn

_PRIMITIVES = (bool, int, float, str, bytes)

# canonicalize() dispatches on a per-type *kind*, classified once per
# class: repeated isinstance/is_dataclass probing per node dominated
# key-building time in the sweeps.
_K_PRIMITIVE = 0
_K_FROZEN_DC = 1
_K_MUTABLE_DC = 2
_K_HOOKED = 3
_K_FRACTION = 4
_K_SEQ = 5
_K_SET = 6
_K_MAP = 7
_K_ARRAY = 8
_K_UNSUPPORTED = 9

_KIND_BY_TYPE: Dict[type, int] = {
    bool: _K_PRIMITIVE,
    int: _K_PRIMITIVE,
    float: _K_PRIMITIVE,
    str: _K_PRIMITIVE,
    bytes: _K_PRIMITIVE,
    type(None): _K_PRIMITIVE,
    tuple: _K_SEQ,
    list: _K_SEQ,
    set: _K_SET,
    frozenset: _K_SET,
    dict: _K_MAP,
    Fraction: _K_FRACTION,
}


def _classify(cls: type) -> int:
    if is_dataclass(cls):
        if cls.__dataclass_params__.frozen:
            return _K_FROZEN_DC
        return _K_MUTABLE_DC
    if cls in _CANONICAL_HOOKS:
        return _K_HOOKED
    if issubclass(cls, Fraction):
        return _K_FRACTION
    if issubclass(cls, (tuple, list)):
        return _K_SEQ
    if issubclass(cls, (set, frozenset)):
        return _K_SET
    if issubclass(cls, dict):
        return _K_MAP
    if hasattr(cls, "dtype") and hasattr(cls, "tobytes"):  # ndarray-like
        return _K_ARRAY
    return _K_UNSUPPORTED


# Field names per dataclass type (``dataclasses.fields`` is surprisingly
# slow to call per object on the key-building hot path).
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}

# Canonical forms of *frozen* dataclass instances, keyed by object
# identity.  The sweeps pass the same config/params singletons to every
# evaluation; recursing through their fields once per call dominated
# key-building time.  The memo keeps a strong reference to each object,
# so a live entry's ``id`` can never be reused by a different object.
# Frozen dataclasses are treated as deeply immutable here — a frozen
# config holding a list that is mutated in place would go stale, and no
# repo config does that.
_FROZEN_MEMO: Dict[int, Tuple[Any, Any]] = {}


def _field_names(cls: type) -> Tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def register_canonical(cls: type, fn: Callable[[Any], Any]) -> None:
    """Install a cheap canonical form for ``cls`` (applies to exactly
    that class, not subclasses, so a subclass with extra state is never
    silently collapsed onto its parent's key).

    Register hooks at import time, before instances of ``cls`` are
    canonicalized: already-memoized canonical forms are not rebuilt.
    """
    _CANONICAL_HOOKS[cls] = fn
    # Re-classify on next sight (dataclass kinds keep their hook check
    # inside the canon builder; other types become _K_HOOKED).
    _KIND_BY_TYPE.pop(cls, None)


def canonicalize(obj: Any) -> Any:
    """A hashable, equality-faithful canonical form of ``obj``.

    Dataclasses canonicalize to ``(qualname, (field, value), ...)`` so
    *any* field change — including nested dataclass fields — produces a
    different key.  Raises ``TypeError`` for types it cannot prove
    faithful, rather than guessing.
    """
    cls = type(obj)
    kind = _KIND_BY_TYPE.get(cls)
    if kind is None:
        kind = _classify(cls)
        _KIND_BY_TYPE[cls] = kind
    if kind == _K_PRIMITIVE:
        return obj
    if kind == _K_FROZEN_DC:
        # The id() only gates an identity memo — the *stored value* is
        # the content-derived canonical form, so keys themselves never
        # depend on object identity (run-to-run determinism holds).
        cached = _FROZEN_MEMO.get(id(obj))  # statcheck: ignore[DET004]
        if cached is not None:
            return cached[1]
        canon = _dataclass_canon(obj, cls)
        _FROZEN_MEMO[id(obj)] = (obj, canon)  # statcheck: ignore[DET004]
        return canon
    if kind == _K_MUTABLE_DC:
        return _dataclass_canon(obj, cls)
    if kind == _K_SEQ:
        return ("seq",) + tuple(canonicalize(item) for item in obj)
    if kind == _K_HOOKED:
        return (cls.__qualname__, canonicalize(_CANONICAL_HOOKS[cls](obj)))
    if kind == _K_FRACTION:
        return ("Fraction", obj.numerator, obj.denominator)
    if kind == _K_SET:
        # Sort by repr: canonical forms are heterogeneous (ints, tuples)
        # and only need a *stable* order, not a meaningful one.
        return ("set",) + tuple(sorted((canonicalize(i) for i in obj), key=repr))
    if kind == _K_MAP:
        return ("map",) + tuple(
            sorted(
                ((canonicalize(k), canonicalize(v)) for k, v in obj.items()),
                key=repr,
            )
        )
    if kind == _K_ARRAY:
        return ("array", str(obj.dtype), tuple(obj.shape), obj.tobytes())
    raise TypeError(
        f"cannot build a content key for {cls.__qualname__}; "
        "register a canonical form with repro.perf.register_canonical"
    )


def _dataclass_canon(obj: Any, cls: type) -> Any:
    hook = _CANONICAL_HOOKS.get(cls)
    if hook is not None:
        return (cls.__qualname__, canonicalize(hook(obj)))
    return (cls.__qualname__,) + tuple(
        (name, canonicalize(getattr(obj, name))) for name in _field_names(cls)
    )


def sweep_key(*objs: Any) -> Tuple[Any, ...]:
    """Content key of a tuple of arguments (see :func:`canonicalize`)."""
    return tuple(canonicalize(obj) for obj in objs)


def build_key(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Tuple[Any, Any]:
    """The exact cache key a :func:`memoize_sweep` wrapper builds for a
    call ``fn(*args, **kwargs)`` — a fixed ``(positional, keyword)``
    2-tuple of canonical forms.  Exposed so out-of-line executors (the
    parallel sweep runner) can key points without invoking the kernel.
    """
    if kwargs:
        kw_key: Any = tuple(
            (name, canonicalize(value))
            for name, value in sorted(kwargs.items())
        )
    else:
        kw_key = ()
    return (tuple(map(canonicalize, args)), kw_key)


def key_digest(key: Any) -> str:
    """Stable hex digest of a canonical key (used for disk-cache file
    names; the in-memory cache keeps the exact tuple, so digest
    collisions can at worst cause a disk re-read, never a wrong hit)."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


_MISSING = object()


class SweepCache:
    """In-memory (optionally disk-backed) store keyed by content keys.

    Disk persistence pickles each value under its key digest inside
    ``disk_dir``; a digest file is only trusted after an exact key match
    against the tuple pickled next to the value.

    The disk layer is safe to share between concurrent processes: every
    write lands in a private temp file first and is published with an
    atomic ``os.replace``, so a reader never observes a torn entry and
    the last concurrent writer of one digest wins with a complete file
    (both writers hold the same content, so either outcome is correct).
    A crash mid-write leaves at most a stale ``*.tmp`` file, never a
    corrupt published entry — and a corrupt file (e.g. from a pre-atomic
    writer) reads as a miss, not an exception.
    """

    def __init__(self, disk_dir: Optional[Path] = None) -> None:
        self._memory: Dict[Any, Any] = {}
        self.disk_dir: Optional[Path] = None
        if disk_dir is not None:
            self.attach_disk(disk_dir)
        self.hits = 0
        self.misses = 0

    def attach_disk(self, disk_dir: Path) -> None:
        """Point this cache at a (possibly shared) persistence directory;
        subsequent stores publish there and lookups read through misses."""
        self.disk_dir = Path(disk_dir)
        self.disk_dir.mkdir(parents=True, exist_ok=True)

    def detach_disk(self) -> None:
        """Stop persisting; the in-memory contents are untouched."""
        self.disk_dir = None

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: Any) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key_digest(key)}.pkl"

    def lookup(self, key: Any) -> Tuple[bool, Any]:
        """``(found, value)`` — counts a hit/miss."""
        # Single dict probe: hashing a deep canonical tuple is the hot
        # cost here, so avoid the contains-then-getitem double hash.
        value = self._memory.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            return True, value
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                stored_key, value = pickle.loads(path.read_bytes())
            except Exception:
                stored_key, value = object(), None  # corrupt entry: miss
            if stored_key == key:
                self._memory[key] = value
                self.hits += 1
                return True, value
        self.misses += 1
        return False, None

    def store(self, key: Any, value: Any) -> None:
        self._memory[key] = value
        path = self._disk_path(key)
        if path is not None:
            # Write-temp-then-replace: the published path transitions
            # atomically from absent/old-complete to new-complete.  The
            # pid suffix keeps concurrent writers' temp files distinct.
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_bytes(pickle.dumps((key, value)))
            os.replace(tmp, path)

    def seed(self, key: Any, value: Any) -> None:
        """Insert into the in-memory map only — no disk write, no
        hit/miss accounting.  The parallel merge path uses this to
        replay worker-computed values into the parent's cache in
        deterministic key order."""
        self._memory[key] = value

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._memory)}


def memoize_sweep(
    fn: Optional[Callable] = None, *, disk_dir: Optional[Path] = None
) -> Callable:
    """Decorator: memoize a pure function behind a content-hash key.

    Unlike ``functools.lru_cache`` the key is built from argument
    *contents* (recursing into dataclass fields), so unhashable or
    freshly-constructed-but-equal arguments hit the same entry.  The
    wrapper exposes ``cache`` (the :class:`SweepCache`), ``cache_info()``
    and ``cache_clear()``.
    """

    def decorate(func: Callable) -> Callable:
        # Refuse **kwargs up front: a catch-all keyword dict invites
        # passing arbitrary objects that bypass per-type canonical
        # hooks, silently degrading key fidelity.  Raising at
        # registration (import time) turns a latent cache-aliasing bug
        # into an immediate, attributable failure.
        for param in inspect.signature(func).parameters.values():
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                raise TypeError(
                    f"memoize_sweep refuses {func.__qualname__!r}: "
                    f"**{param.name} makes the content key unfaithful "
                    "(arbitrary keywords bypass canonical hooks); "
                    "spell the cacheable keywords out explicitly"
                )
        cache = SweepCache(disk_dir=disk_dir)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            key = build_key(args, kwargs)
            found, value = cache.lookup(key)
            if found:
                return value
            value = func(*args, **kwargs)
            cache.store(key, value)
            return value

        wrapper.cache = cache
        wrapper.cache_info = cache.info
        wrapper.cache_clear = cache.clear
        MEMOIZED_SWEEPS[func.__qualname__] = wrapper
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
