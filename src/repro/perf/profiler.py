"""Zero-dependency wall-time attribution for the benchmark suite.

A module-global registry accumulates wall seconds per *phase*
(``kernel``, ``netsim``, ``model``, ...) plus integer counters (cache
hits, events popped, ...).  Instrumentation points in the hot paths are
``with phase("kernel"):`` blocks; when profiling is disabled — the
default — ``phase`` returns a shared no-op context manager so the hot
paths pay a dictionary lookup and nothing else.

The registry is process-global on purpose: the benchmark runner owns
the enable/reset lifecycle and the instrumented code stays oblivious.
Nested or overlapping phases each accumulate their own wall time, so
the per-phase numbers attribute *inclusive* time and may sum to more
than the end-to-end wall clock.
"""

from __future__ import annotations

import time
from typing import Dict

from .memoize import effect_free


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.elapsed_s``."""

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_s = time.perf_counter() - self._start


_enabled = False
_phase_seconds: Dict[str, float] = {}
_phase_calls: Dict[str, int] = {}
_counters: Dict[str, int] = {}


class _PhaseTimer:
    """Reusable-per-call phase accumulator (cheaper than a generator)."""

    __slots__ = ("name", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        _phase_seconds[self.name] = _phase_seconds.get(self.name, 0.0) + elapsed
        _phase_calls[self.name] = _phase_calls.get(self.name, 0) + 1


class _Noop:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_CTX = _Noop()


# Vouched effect-free: the phase/counter registry is observability-only
# state that never feeds back into any computed value, so memoized
# callers may use it without poisoning their cache keys (EFF001).
@effect_free
def phase(name: str):
    """Attribute the wall time of a ``with`` block to ``name``."""
    if not _enabled:
        return _NOOP_CTX
    return _PhaseTimer(name)


@effect_free
def counter_add(name: str, amount: int = 1) -> None:
    """Bump a named counter (no-op while profiling is disabled)."""
    if not _enabled:
        return
    _counters[name] = _counters.get(name, 0) + amount


def profiling_enabled() -> None:
    """Turn the registry on (benchmark runner entry)."""
    global _enabled
    _enabled = True


def profiling_disabled() -> None:
    global _enabled
    _enabled = False


def reset_profile() -> None:
    """Zero all phases and counters (enable state is unchanged)."""
    _phase_seconds.clear()
    _phase_calls.clear()
    _counters.clear()


def merge_profile(snapshot: Dict[str, Dict]) -> None:
    """Fold another process's :func:`snapshot_profile` into this
    registry — the parallel sweep executor aggregates per-worker phase
    and counter shares back into the parent's breakdown."""
    for name, data in snapshot.get("phases", {}).items():
        _phase_seconds[name] = _phase_seconds.get(name, 0.0) + data["seconds"]
        _phase_calls[name] = _phase_calls.get(name, 0) + data.get("calls", 0)
    for name, amount in snapshot.get("counters", {}).items():
        _counters[name] = _counters.get(name, 0) + amount


def snapshot_profile() -> Dict[str, Dict]:
    """Copy of the registry: per-phase seconds/calls plus counters."""
    return {
        "phases": {
            name: {"seconds": seconds, "calls": _phase_calls.get(name, 0)}
            for name, seconds in sorted(_phase_seconds.items())
        },
        "counters": dict(sorted(_counters.items())),
    }
