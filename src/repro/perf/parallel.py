"""Process-parallel sweep execution over the memoized sweep registry.

The figure sweeps, paper grids and fault-scenario batteries are built
from *independent* evaluations of pure kernels — exactly the functions
registered in :data:`~repro.perf.memoize.MEMOIZED_SWEEPS` and proven
pure by the interprocedural effect analysis (EFF001).  That proof is
the dispatch license: a pure kernel's result depends only on its
content key, so any process may compute any point and the results can
be merged without coordination.

The executor is a *pre-warmer*: callers enumerate the
:class:`SweepPoint`\\ s a sweep will evaluate, :func:`run_points` shards
them across worker processes, and every worker publishes its results
into one crash-safe shared disk cache (atomic per-digest files, see
:class:`~repro.perf.memoize.SweepCache`).  The parent then merges the
values into its in-memory caches **in canonical key-digest order** and
replays the sweep serially against warm caches — so serial and parallel
runs produce byte-identical output by construction, and a worker killed
mid-sweep costs only its unfinished points (the survivors' results are
already on disk; the merge loop recomputes the rest in-parent).

Safety is gated twice:

* at runtime — :func:`sweep_point` and the worker loop refuse any
  callable not registered in ``MEMOIZED_SWEEPS``;
* statically — statcheck rule ``PAR001`` flags any ``sweep_point``
  dispatch whose target has a non-empty impure effect summary.
"""

from __future__ import annotations

import importlib
import multiprocessing
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .memoize import MEMOIZED_SWEEPS, SweepCache, build_key, key_digest
from .profiler import (
    merge_profile,
    profiling_enabled,
    reset_profile,
    snapshot_profile,
)

#: Modules whose import registers every dispatchable sweep kernel.
#: Workers import these before touching the registry, so dispatch by
#: qualified name works under both ``fork`` and ``spawn`` start methods.
SWEEP_MODULES: Tuple[str, ...] = (
    "repro.core.perf_model",
    "repro.core.dynamic_clustering",
    "repro.faults.scenarios",
    "repro.planner.strategy",
    "repro.planner.solver",
)


def import_sweep_modules() -> None:
    """Populate ``MEMOIZED_SWEEPS`` with every kernel defined on the tree."""
    for name in SWEEP_MODULES:
        importlib.import_module(name)


@dataclass(frozen=True)
class SweepPoint:
    """One dispatchable evaluation: a registered kernel's qualified name
    plus the exact call operands (keywords canonically sorted)."""

    qualname: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()


def sweep_point(fn: Callable, *args: Any, **kwargs: Any) -> SweepPoint:
    """Package one evaluation of ``fn`` for parallel dispatch.

    ``fn`` must be the registered ``memoize_sweep`` wrapper itself —
    the runtime half of the safety gate (PAR001 is the static half):
    only functions in the registry, which EFF001 proves pure, may cross
    a process boundary, because a worker's result is merged back purely
    by content key.
    """
    inner = getattr(fn, "__wrapped__", fn)
    qualname = getattr(inner, "__qualname__", "<anonymous>")
    if MEMOIZED_SWEEPS.get(qualname) is not fn:
        raise TypeError(
            f"sweep_point refuses {qualname!r}: only the registered "
            "memoize_sweep wrappers in MEMOIZED_SWEEPS (statically "
            "proven pure) may be dispatched to worker processes"
        )
    return SweepPoint(qualname, tuple(args), tuple(sorted(kwargs.items())))


def _registered_kernel(qualname: str) -> Callable:
    wrapper = MEMOIZED_SWEEPS.get(qualname)
    if wrapper is None:
        raise KeyError(
            f"sweep kernel {qualname!r} is not in MEMOIZED_SWEEPS; only "
            "registered pure kernels may be executed for a SweepPoint"
        )
    return wrapper


def registered_caches() -> List[SweepCache]:
    """Every registered sweep cache, in deterministic qualname order."""
    return [wrapper.cache for _, wrapper in sorted(MEMOIZED_SWEEPS.items())]


def _point_key(point: SweepPoint) -> Tuple[Any, Any]:
    return build_key(point.args, dict(point.kwargs))


# ---- worker side ------------------------------------------------------------


def _worker_run_chunk(
    worker_id: int,
    cache_dir: str,
    points: List[SweepPoint],
    profile: bool,
) -> Dict[str, Any]:
    """Evaluate one shard of points against the shared disk cache.

    Runs in a worker process (or inline for the 1-worker path).  Every
    registered cache is attached to ``cache_dir``, so each computed
    value is atomically published for the parent and for every other
    worker; the return value carries only *statistics* — result data
    travels through the shared cache, which is what makes a dead
    worker's completed points recoverable.
    """
    import_sweep_modules()
    if profile:
        # Child-only: shed any profile state inherited across fork so
        # the returned snapshot is exactly this worker's share.
        profiling_enabled()
        reset_profile()
    caches = registered_caches()
    for cache in caches:
        cache.attach_disk(Path(cache_dir))
    hits_before = sum(cache.hits for cache in caches)
    misses_before = sum(cache.misses for cache in caches)
    start = time.perf_counter()
    for point in points:
        wrapper = _registered_kernel(point.qualname)
        wrapper(*point.args, **dict(point.kwargs))
    wall_s = time.perf_counter() - start
    snapshot = snapshot_profile() if profile else {}
    return {
        "worker": worker_id,
        "points": len(points),
        "hits": sum(cache.hits for cache in caches) - hits_before,
        "misses": sum(cache.misses for cache in caches) - misses_before,
        "wall_s": wall_s,
        "phases": snapshot.get("phases", {}),
        "counters": snapshot.get("counters", {}),
        "completed": True,
    }


# ---- parent side ------------------------------------------------------------


def _mp_context():
    """Prefer ``fork`` (shares the already-imported tree and any
    test-registered kernels); fall back to the platform default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_points(
    points: Iterable[SweepPoint],
    workers: int = 1,
    cache_dir: Optional[Path] = None,
    profile: bool = False,
) -> Dict[str, Any]:
    """Evaluate sweep points across ``workers`` processes; return stats.

    After this call every point's value sits in the owning kernel's
    in-memory cache of *this* process, seeded in canonical key-digest
    order — a serial replay of the sweep then hits every point, which
    is the determinism contract: parallel execution can only change
    *when* a value is computed, never *what* the sweep produces.

    ``cache_dir`` names the shared disk cache; by default a private
    directory is created and removed after merging.  Pass an explicit
    directory to persist results across runs/processes (warm starts in
    any process count hit it).  With ``profile=True`` workers return
    their phase/counter snapshots, which are folded into this process's
    profiler registry.

    Worker loss is tolerated: a killed worker's completed points are
    already on disk, and the merge loop recomputes whatever is missing
    in-parent (reported as ``recovered``).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    point_list = list(points)
    for point in point_list:
        _registered_kernel(point.qualname)
    start = time.perf_counter()

    # Key every point up front; dedupe repeats (sweeps share baselines).
    by_digest: Dict[str, SweepPoint] = {}
    for point in point_list:
        digest = key_digest(_point_key(point))
        if digest not in by_digest:
            by_digest[digest] = point
    order = sorted(by_digest)

    owns_dir = cache_dir is None
    shared_dir = (
        Path(tempfile.mkdtemp(prefix="repro-sweep-")) if owns_dir
        else Path(cache_dir)
    )
    worker_stats: List[Dict[str, Any]] = []
    recovered = 0
    caches = registered_caches()
    prior_disk = [cache.disk_dir for cache in caches]
    try:
        if workers == 1 or len(order) <= 1:
            stats = _worker_run_chunk(
                0, str(shared_dir), [by_digest[d] for d in order], False
            )
            worker_stats.append(stats)
        else:
            shards: List[List[SweepPoint]] = [
                [] for _ in range(min(workers, len(order)))
            ]
            for index, digest in enumerate(order):
                shards[index % len(shards)].append(by_digest[digest])
            with ProcessPoolExecutor(
                max_workers=len(shards), mp_context=_mp_context()
            ) as pool:
                futures = [
                    pool.submit(
                        _worker_run_chunk, index, str(shared_dir), shard, profile
                    )
                    for index, shard in enumerate(shards)
                ]
                for index, future in enumerate(futures):
                    try:
                        worker_stats.append(future.result())
                    except BrokenProcessPool:
                        # This shard's process (or a pool peer) died;
                        # whatever it finished is on disk already.
                        worker_stats.append(
                            {
                                "worker": index,
                                "points": len(shards[index]),
                                "completed": False,
                            }
                        )
            if profile:
                for stats in worker_stats:
                    merge_profile(
                        {
                            "phases": stats.get("phases", {}),
                            "counters": stats.get("counters", {}),
                        }
                    )

        # Deterministic merge: seed this process's in-memory caches in
        # digest order, reading through the shared disk cache and
        # recomputing in-parent anything a lost worker never published
        # (the wrapper recomputes-and-stores on a miss, so a bumped
        # miss counter is exactly the recovery signal).
        for cache in caches:
            cache.attach_disk(shared_dir)
        for digest in order:
            point = by_digest[digest]
            wrapper = _registered_kernel(point.qualname)
            misses_before = wrapper.cache.misses
            wrapper(*point.args, **dict(point.kwargs))
            if wrapper.cache.misses > misses_before:
                recovered += 1
    finally:
        for cache, disk_dir in zip(caches, prior_disk):
            if disk_dir is None:
                cache.detach_disk()
            else:
                cache.attach_disk(disk_dir)
        if owns_dir:
            shutil.rmtree(shared_dir, ignore_errors=True)

    return {
        "workers": workers,
        "points": len(point_list),
        "unique_points": len(order),
        "recovered": recovered,
        "wall_s": time.perf_counter() - start,
        "worker_stats": worker_stats,
    }
