"""Cross-cutting performance layer: sweep memoization, wall-time
attribution and the perf-regression benchmark runner.

Three pieces, used together by the figure/ablation sweeps:

* :mod:`repro.perf.memoize` — a content-hash keyed cache for pure
  evaluations over (frozen) config dataclasses, so repeated
  ``(layer, grid, batch)`` points in a sweep are computed once per
  process (and optionally persisted to disk).
* :mod:`repro.perf.profiler` — a zero-dependency ``Timer`` plus a
  global phase/counter registry that benchmarks use to attribute wall
  time to kernel / netsim / model phases.
* :mod:`repro.perf.bench` — ``python -m repro bench``: runs the
  benchmark suite (or a named subset), records wall clock plus the
  profiling breakdown, and writes the ``BENCH_PR<k>.json`` perf
  trajectory file future PRs regress against.
"""

from .bench import (
    BENCHMARKS,
    collect_machine_info,
    run_benchmarks,
    write_bench_json,
)
from .memoize import (
    MEMOIZED_SWEEPS,
    SweepCache,
    canonicalize,
    effect_free,
    memoize_sweep,
    register_canonical,
    sweep_key,
)
from .profiler import (
    Timer,
    counter_add,
    phase,
    profiling_disabled,
    profiling_enabled,
    reset_profile,
    snapshot_profile,
)

__all__ = [
    "BENCHMARKS",
    "MEMOIZED_SWEEPS",
    "SweepCache",
    "Timer",
    "canonicalize",
    "collect_machine_info",
    "counter_add",
    "effect_free",
    "memoize_sweep",
    "phase",
    "profiling_disabled",
    "profiling_enabled",
    "register_canonical",
    "reset_profile",
    "run_benchmarks",
    "snapshot_profile",
    "sweep_key",
    "write_bench_json",
]
