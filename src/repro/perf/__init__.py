"""Cross-cutting performance layer: sweep memoization, wall-time
attribution and the perf-regression benchmark runner.

Three pieces, used together by the figure/ablation sweeps:

* :mod:`repro.perf.memoize` — a content-hash keyed cache for pure
  evaluations over (frozen) config dataclasses, so repeated
  ``(layer, grid, batch)`` points in a sweep are computed once per
  process (and optionally persisted to disk).
* :mod:`repro.perf.profiler` — a zero-dependency ``Timer`` plus a
  global phase/counter registry that benchmarks use to attribute wall
  time to kernel / netsim / model phases.
* :mod:`repro.perf.bench` — ``python -m repro bench``: runs the
  benchmark suite (or a named subset), records wall clock plus the
  profiling breakdown, and writes the ``BENCH_PR<k>.json`` perf
  trajectory file future PRs regress against.
* :mod:`repro.perf.parallel` — the process-parallel sweep executor:
  shards registered pure-kernel evaluations across worker processes
  through a crash-safe shared disk cache and merges deterministically,
  so ``repro bench --workers N`` is byte-identical to ``--workers 1``.
"""

from .bench import (
    BENCHMARKS,
    POINT_ENUMERATORS,
    collect_machine_info,
    run_benchmarks,
    write_bench_json,
)
from .memoize import (
    MEMOIZED_SWEEPS,
    SweepCache,
    build_key,
    canonicalize,
    effect_free,
    key_digest,
    memoize_sweep,
    register_canonical,
    sweep_key,
)
from .parallel import (
    SWEEP_MODULES,
    SweepPoint,
    import_sweep_modules,
    registered_caches,
    run_points,
    sweep_point,
)
from .profiler import (
    Timer,
    counter_add,
    merge_profile,
    phase,
    profiling_disabled,
    profiling_enabled,
    reset_profile,
    snapshot_profile,
)

__all__ = [
    "BENCHMARKS",
    "MEMOIZED_SWEEPS",
    "POINT_ENUMERATORS",
    "SWEEP_MODULES",
    "SweepCache",
    "SweepPoint",
    "Timer",
    "build_key",
    "canonicalize",
    "collect_machine_info",
    "counter_add",
    "effect_free",
    "import_sweep_modules",
    "key_digest",
    "memoize_sweep",
    "merge_profile",
    "phase",
    "profiling_disabled",
    "profiling_enabled",
    "register_canonical",
    "registered_caches",
    "reset_profile",
    "run_benchmarks",
    "run_points",
    "snapshot_profile",
    "sweep_key",
    "sweep_point",
    "write_bench_json",
]
