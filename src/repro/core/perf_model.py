"""Per-layer timing and energy model of MPT on the NDP machine.

Combines the substrates: systolic-array GEMM timing (:mod:`repro.ndp`),
DRAM streaming, the memory-centric network's collective and all-to-all
closed forms (:mod:`repro.netsim`, cross-validated against the event
simulator), and the communication-volume model of Section III-C.

Per phase, compute and data movement overlap through double buffering and
the pipelined communication engines, so phase time is the maximum of the
systolic, DRAM and network rates plus the vector-unit tail; the weight
collective overlaps with the gradient GEMM that produces its chunks
(Section VI-C's concurrent Reduce blocks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, Optional

from ..ndp.energy import EnergyBreakdown, EnergyModel
from ..ndp.systolic import batched_gemm_cycles
from ..perf import memoize_sweep, phase, register_canonical
from ..netsim.collectives import (
    all_to_all_time,
    fbfly_injection_rate,
    fbfly_shape,
    ring_allreduce_time,
)
from ..params import DEFAULT_PARAMS, HardwareParams
from ..winograd.cook_toom import WinogradTransform
from ..workloads.layers import ConvLayerSpec
from .comm_model import (
    DEFAULT_FACTORS,
    TrafficFactors,
    layer_comm_volume,
    transform_for,
)
from .config import GridConfig, SystemConfig

BYTES = 4


@dataclass
class PhasePerf:
    """Timing/energy of one phase on the critical-path worker."""

    compute_s: float = 0.0
    dram_s: float = 0.0
    vector_s: float = 0.0
    net_tile_s: float = 0.0
    net_collective_s: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    @property
    def time_s(self) -> float:
        return (
            max(self.compute_s, self.dram_s, self.net_tile_s, self.net_collective_s)
            + self.vector_s
        )


@dataclass
class LayerPerf:
    """Full-iteration result for one layer under one configuration."""

    layer: ConvLayerSpec
    grid: GridConfig
    phases: Dict[str, PhasePerf] = field(default_factory=dict)

    @property
    def forward_s(self) -> float:
        return self.phases["fprop"].time_s

    @property
    def backward_s(self) -> float:
        return self.phases["bprop"].time_s + self.phases["update"].time_s

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s

    @property
    def energy_j(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for phase in self.phases.values():
            total = total + phase.energy
        return total


class PerfModel:
    """Evaluates one layer iteration for a system configuration."""

    def __init__(
        self,
        params: HardwareParams = DEFAULT_PARAMS,
        factors: TrafficFactors = DEFAULT_FACTORS,
    ) -> None:
        self.params = params
        self.factors = factors
        self.energy = EnergyModel(params)

    # ---- helpers ---------------------------------------------------------
    def _gemm_seconds(self, count: float, m: int, k: int, n: int) -> float:
        """Seconds for ``count`` equal-shape GEMMs.  ``count`` may be
        fractional: when the tile element count does not divide the group
        count (e.g. 36 elements of F(2x2,5x5) over 16 groups) the
        architecture balances load by also splitting channel ranges, so
        the per-worker work is the exact average."""
        if count <= 0 or min(m, k, n) == 0:
            return 0.0
        single = batched_gemm_cycles(1, max(m, 1), max(k, 1), max(n, 1), self.params)
        fill = self.params.systolic_rows + self.params.systolic_cols
        cycles = count * (single - fill) + fill
        return cycles / self.params.clock_hz

    def _dram_seconds(self, nbytes: float) -> float:
        return nbytes / self.params.dram_bytes_per_s

    def _collective_seconds(
        self, slice_bytes: float, grid: GridConfig, rings: int
    ) -> float:
        if grid.num_clusters <= 1 or slice_bytes <= 0:
            return 0.0
        if grid.num_groups == 1:
            # Single-group configuration (Fig. 9d): no FBFLY traffic, so
            # all four I/O links carry collective rings.
            rings = max(rings, 4)
        return ring_allreduce_time(
            int(slice_bytes),
            grid.num_clusters,
            self.params.full_link_bytes_per_s,
            rings=rings,
            params=self.params,
        )

    def _tile_seconds(self, per_worker_bytes: float, grid: GridConfig) -> float:
        ng = grid.num_groups
        if ng <= 1 or per_worker_bytes <= 0:
            return 0.0
        per_pair = per_worker_bytes / (ng - 1)
        return all_to_all_time(
            int(math.ceil(per_pair)),
            ng,
            fbfly_injection_rate(ng, self.params),
            params=self.params,
        )

    def _phase_energy(
        self,
        macs: float,
        vector_flops: float,
        transform_flops: float,
        dram_bytes: float,
        link_bytes: float,
        time_s: float,
        grid: GridConfig,
        config: SystemConfig,
    ) -> EnergyBreakdown:
        full_links, narrow_links = powered_links(config, grid)
        return EnergyBreakdown(
            compute_j=self.energy.mac_energy(macs)
            + self.energy.flop_energy(vector_flops + transform_flops),
            sram_j=self.energy.sram_energy(2.0 * dram_bytes),
            dram_j=self.energy.dram_energy(dram_bytes),
            link_j=self.energy.link_energy(link_bytes),
            link_idle_j=self.energy.link_idle_energy(time_s, full_links, narrow_links),
        )

    # ---- main entry --------------------------------------------------------
    def evaluate_layer(
        self,
        layer: ConvLayerSpec,
        batch: int,
        config: SystemConfig,
        grid: GridConfig,
        transform: Optional[WinogradTransform] = None,
    ) -> LayerPerf:
        """Per-worker timing/energy of one training iteration of ``layer``.

        ``transform`` overrides the default transform rule (transform
        search extension); ignored for direct convolution.

        Results are memoized process-wide on the *contents* of every
        argument (plus this model's params and traffic factors) — the
        figure sweeps re-evaluate identical points thousands of times.
        The returned :class:`LayerPerf` is shared across equal calls and
        must be treated as read-only.
        """
        return evaluate_layer_cached(
            layer, batch, config, grid, transform, self.params, self.factors
        )

    def _evaluate_layer_impl(
        self,
        layer: ConvLayerSpec,
        batch: int,
        config: SystemConfig,
        grid: GridConfig,
        transform: Optional[WinogradTransform],
    ) -> LayerPerf:
        if batch % grid.num_clusters:
            batch_per_cluster = batch / grid.num_clusters
        else:
            batch_per_cluster = batch // grid.num_clusters
        if config.conv == "direct":
            return self._evaluate_direct(layer, batch, config, grid)
        if transform is None:
            transform = transform_for(config, grid, layer.kernel)
        return self._evaluate_winograd(
            layer, batch, batch_per_cluster, config, grid, transform
        )

    # ---- Winograd path -------------------------------------------------------
    def _evaluate_winograd(
        self,
        layer: ConvLayerSpec,
        batch: int,
        batch_per_cluster: float,
        config: SystemConfig,
        grid: GridConfig,
        transform: WinogradTransform,
    ) -> LayerPerf:
        ng = grid.num_groups
        t2 = transform.tile**2
        elems = t2 / ng  # fractional: load balanced via channel splits
        tiles_img = layer.tiles_per_image(transform.m)
        tiles_cluster = batch_per_cluster * tiles_img  # per channel
        gemm_m = max(1, math.ceil(tiles_cluster))
        in_ch, out_ch = layer.in_channels, layer.out_channels

        comm = layer_comm_volume(
            layer, batch, config, grid, self.factors, transform=transform
        )
        perf = LayerPerf(layer=layer, grid=grid)

        # Shared byte counts (per worker).
        x_bytes = batch_per_cluster * in_ch * layer.height * layer.width * BYTES / ng
        y_bytes = (
            batch_per_cluster * out_ch * layer.out_height * layer.out_width * BYTES / ng
        )
        x_tiles_bytes = tiles_cluster * in_ch * t2 * BYTES / ng
        y_tiles_bytes = tiles_cluster * out_ch * t2 * BYTES / ng
        w_bytes = layer.winograd_weight_count(transform.tile) * BYTES / ng
        t = transform.tile
        m_out = transform.m
        input_tf_flops = tiles_cluster * in_ch / ng * 2 * (2 * t**3)
        inverse_tf_flops = (
            tiles_cluster * out_ch / ng * 2 * (m_out * t * t + m_out * m_out * t)
        )

        # ---- fprop -----------------------------------------------------------
        fprop = PhasePerf()
        fprop.compute_s = self._gemm_seconds(elems, gemm_m, in_ch, out_ch)
        fprop_dram = (
            x_bytes  # read spatial inputs
            + 2 * x_tiles_bytes  # write + read scattered X elements
            + w_bytes  # weight slice
            + 2 * y_tiles_bytes  # write + read output elements (gather out)
            + y_bytes  # write spatial outputs
        )
        fprop.dram_s = self._dram_seconds(fprop_dram)
        relu_flops = batch_per_cluster * out_ch * layer.out_height * layer.out_width / ng
        fprop.vector_s = relu_flops / (self.params.vector_lanes * self.params.clock_hz)
        fprop_net = comm.scatter_fprop + comm.gather_fprop
        fprop.net_tile_s = self._tile_seconds(fprop_net, grid)
        fprop.energy = self._phase_energy(
            macs=elems * gemm_m * in_ch * out_ch,
            vector_flops=relu_flops,
            transform_flops=input_tf_flops + inverse_tf_flops,
            dram_bytes=fprop_dram,
            link_bytes=fprop_net,
            time_s=fprop.time_s,
            grid=grid,
            config=config,
        )
        perf.phases["fprop"] = fprop

        # ---- bprop -----------------------------------------------------------
        bprop = PhasePerf()
        bprop.compute_s = self._gemm_seconds(elems, gemm_m, out_ch, in_ch)
        bprop_dram = (
            y_bytes + 2 * y_tiles_bytes + w_bytes + 2 * x_tiles_bytes + x_bytes
        )
        bprop.dram_s = self._dram_seconds(bprop_dram)
        relu_grad_flops = (
            batch_per_cluster * in_ch * layer.height * layer.width / ng
        )
        bprop.vector_s = relu_grad_flops / (
            self.params.vector_lanes * self.params.clock_hz
        )
        bprop_net = comm.scatter_bprop + comm.gather_bprop
        bprop.net_tile_s = self._tile_seconds(bprop_net, grid)
        bprop.energy = self._phase_energy(
            macs=elems * gemm_m * out_ch * in_ch,
            vector_flops=relu_grad_flops,
            transform_flops=input_tf_flops + inverse_tf_flops,
            dram_bytes=bprop_dram,
            link_bytes=bprop_net,
            time_s=bprop.time_s,
            grid=grid,
            config=config,
        )
        perf.phases["bprop"] = bprop

        # ---- updateGrad + collective -------------------------------------------
        update = PhasePerf()
        update.compute_s = self._gemm_seconds(elems, in_ch, gemm_m, out_ch)
        collective_bytes = comm.weight_bytes
        slice_bytes = (
            layer.in_channels * layer.out_channels * elems * BYTES
            if config.update_domain == "winograd"
            else layer.weight_count * BYTES
        )
        update_dram = x_tiles_bytes + y_tiles_bytes + 3 * slice_bytes
        update.dram_s = self._dram_seconds(update_dram)
        update.net_collective_s = self._collective_seconds(
            slice_bytes, grid, config.collective_rings
        )
        update.energy = self._phase_energy(
            macs=elems * in_ch * gemm_m * out_ch,
            vector_flops=0.0,
            transform_flops=0.0,
            dram_bytes=update_dram,
            link_bytes=collective_bytes,
            time_s=update.time_s,
            grid=grid,
            config=config,
        )
        perf.phases["update"] = update
        return perf

    # ---- direct-convolution path ------------------------------------------------
    def _evaluate_direct(
        self,
        layer: ConvLayerSpec,
        batch: int,
        config: SystemConfig,
        grid: GridConfig,
    ) -> LayerPerf:
        p = grid.workers
        batch_w = batch / p
        out_elems = layer.out_height * layer.out_width
        gemm_m = max(1, math.ceil(batch_w * out_elems))
        k = layer.in_channels * layer.kernel**2
        in_ch, out_ch = layer.in_channels, layer.out_channels

        x_bytes = batch_w * in_ch * layer.height * layer.width * BYTES
        y_bytes = batch_w * out_ch * out_elems * BYTES
        w_bytes = layer.weight_count * BYTES

        perf = LayerPerf(layer=layer, grid=grid)
        comm = layer_comm_volume(layer, batch, config, grid, self.factors)

        fprop = PhasePerf()
        fprop.compute_s = self._gemm_seconds(1, gemm_m, k, out_ch)
        fprop_dram = x_bytes + w_bytes + y_bytes
        fprop.dram_s = self._dram_seconds(fprop_dram)
        relu_flops = batch_w * out_ch * out_elems
        fprop.vector_s = relu_flops / (self.params.vector_lanes * self.params.clock_hz)
        fprop.energy = self._phase_energy(
            macs=gemm_m * k * out_ch,
            vector_flops=relu_flops,
            transform_flops=0.0,
            dram_bytes=fprop_dram,
            link_bytes=0.0,
            time_s=fprop.time_s,
            grid=grid,
            config=config,
        )
        perf.phases["fprop"] = fprop

        bprop = PhasePerf()
        k_b = out_ch * layer.kernel**2
        gemm_m_b = max(1, math.ceil(batch_w * layer.height * layer.width))
        bprop.compute_s = self._gemm_seconds(1, gemm_m_b, k_b, in_ch)
        bprop_dram = y_bytes + w_bytes + x_bytes
        bprop.dram_s = self._dram_seconds(bprop_dram)
        bprop.energy = self._phase_energy(
            macs=gemm_m_b * k_b * in_ch,
            vector_flops=0.0,
            transform_flops=0.0,
            dram_bytes=bprop_dram,
            link_bytes=0.0,
            time_s=bprop.time_s,
            grid=grid,
            config=config,
        )
        perf.phases["bprop"] = bprop

        update = PhasePerf()
        update.compute_s = self._gemm_seconds(1, k, gemm_m, out_ch)
        update_dram = x_bytes + y_bytes + 3 * w_bytes
        update.dram_s = self._dram_seconds(update_dram)
        update.net_collective_s = self._collective_seconds(
            w_bytes, grid, config.collective_rings
        )
        update.energy = self._phase_energy(
            macs=k * gemm_m * out_ch,
            vector_flops=0.0,
            transform_flops=0.0,
            dram_bytes=update_dram,
            link_bytes=comm.weight_bytes,
            time_s=update.time_s,
            grid=grid,
            config=config,
        )
        perf.phases["update"] = update
        return perf


# ``WinogradTransform``'s exact-Fraction matrices are fully determined
# by ``(m, r)`` (always built by ``make_transform`` with the default
# interpolation points), so the content key collapses to those two ints
# instead of recursing through ~T^2 Fractions per call.
register_canonical(WinogradTransform, lambda t: (t.m, t.r))

# A layer's ``name`` is display-only — the model reads shapes and
# channel counts.  Dropping it from the content key lets same-shape
# layers (e.g. the repeated VGG blocks) share one evaluation.
register_canonical(
    ConvLayerSpec,
    lambda layer: tuple(
        (f.name, getattr(layer, f.name))
        for f in dataclass_fields(layer)
        if f.name != "name"
    ),
)


@memoize_sweep
def evaluate_layer_cached(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    grid: GridConfig,
    transform: Optional[WinogradTransform] = None,
    params: HardwareParams = DEFAULT_PARAMS,
    factors: TrafficFactors = DEFAULT_FACTORS,
) -> LayerPerf:
    """Content-keyed, process-wide cache in front of the perf model.

    :meth:`PerfModel.evaluate_layer` routes every evaluation through
    here; the wrapper's ``cache`` attribute is what the benchmark runner
    clears and reports (see ``repro.perf.bench``).  The body only runs
    on a cache miss, so the ``model`` phase attributes pure model time.
    """
    with phase("model"):
        model = PerfModel(params=params, factors=factors)
        return model._evaluate_layer_impl(layer, batch, config, grid, transform)


def powered_links(config: SystemConfig, grid: GridConfig) -> tuple[int, int]:
    """Powered link directions per worker (unused links are turned off,
    Section VII-A).  DP: 4 full-width ring links in + out.  MPT: 2 ring
    links each way plus the cluster FBFLY narrow links."""
    if grid.num_groups <= 1:
        return 2 * config.collective_rings, 0
    rows, cols = fbfly_shape(grid.num_groups)
    narrow = 2 * ((rows - 1) + (cols - 1))
    return 2 * config.collective_rings, narrow
