"""End-to-end training-iteration simulation (paper Sections VI-A, VII).

Builds the per-iteration task graph the host constructs at training start
(forward chain, backward chain, per-layer weight collectives) and executes
it with the NDP task scheduler, letting weight collectives overlap with
the backward compute of earlier layers exactly as the pipelined collective
engine allows.  Produces per-layer and whole-network iteration times and
energy for any Table IV configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ndp.energy import EnergyBreakdown
from ..ndp.taskgraph import TaskExecutor, TaskGraph
from ..perf import canonicalize
from ..workloads.layers import ConvLayerSpec
from ..workloads.networks import CnnSpec
from .comm_model import DEFAULT_FACTORS, TrafficFactors
from .config import GridConfig, MachineConfig, SystemConfig
from .dynamic_clustering import ClusteringChoice, choose_clustering
from .perf_model import LayerPerf, PerfModel


@dataclass(frozen=True)
class FaultImpact:
    """How one iteration's faults reshape the simulated training step.

    Produced by :mod:`repro.faults` (analytically via :meth:`from_plan`,
    or from a measured resilient collective) and consumed by
    :meth:`TrainingSimulator.simulate_iteration`.  Synchronous SGD
    semantics:

    * **Stragglers** — the iteration waits for the slowest worker, so
      every compute task stretches by the largest active slowdown.
    * **Dead workers** — spliced out of their gradient rings; the
      surviving workers compute on their own shards only, so the
      iteration proceeds at a *reduced effective batch* and the gradient
      sum must be renormalised by ``n / (n - dead)`` to stay an unbiased
      mean (:attr:`grad_renorm`).  Weight collectives run on the shorter
      degraded ring (``collective_scale``), and the first collective of
      the iteration additionally pays the one-time detection +
      reconfiguration latency (``collective_overhead_s``).
    """

    workers: int
    compute_slowdown: float = 1.0
    dead_workers: int = 0
    collective_scale: float = 1.0
    collective_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_slowdown < 1.0:
            raise ValueError(
                f"compute_slowdown must be >= 1, got {self.compute_slowdown}"
            )
        if not 0 <= self.dead_workers < self.workers:
            raise ValueError(
                f"dead_workers must be in [0, {self.workers}), "
                f"got {self.dead_workers}"
            )

    @property
    def survivors(self) -> int:
        return self.workers - self.dead_workers

    @property
    def grad_renorm(self) -> float:
        """Factor restoring the gradient mean over surviving shards."""
        return self.workers / self.survivors

    def effective_batch(self, batch: int) -> int:
        """Images actually contributing to the step (shards of dead
        workers are dropped, not recomputed)."""
        return round(batch * self.survivors / self.workers)

    @classmethod
    def from_plan(
        cls,
        plan,
        workers: int,
        at_s: float = 0.0,
        collective_overhead_s: float = 0.0,
    ) -> "FaultImpact":
        """Analytic impact of a :class:`repro.faults.FaultPlan`.

        The degraded ring of ``n - dead`` survivors moves
        ``2(n'-1)/n'`` of the gradient bytes per worker versus
        ``2(n-1)/n`` before, which sets ``collective_scale``; measured
        detection/reconfiguration latency can be passed in as the
        one-time overhead.
        """
        dead = len(plan.dead_workers_at(at_s))
        survivors = max(1, workers - dead)
        if workers > 1 and survivors > 1:
            scale = ((survivors - 1) / survivors) / ((workers - 1) / workers)
        else:
            scale = 1.0
        return cls(
            workers=workers,
            compute_slowdown=plan.max_straggler_factor(at_s),
            dead_workers=workers - survivors,
            collective_scale=scale,
            collective_overhead_s=collective_overhead_s,
        )


@dataclass
class LayerReport:
    """One layer's simulated iteration under a configuration."""

    layer: ConvLayerSpec
    grid: GridConfig
    perf: LayerPerf

    @property
    def forward_s(self) -> float:
        return self.perf.forward_s

    @property
    def backward_s(self) -> float:
        return self.perf.backward_s


@dataclass
class IterationResult:
    """Whole-network result of one simulated training iteration."""

    config_name: str
    workers: int
    batch: int
    layers: List[LayerReport] = field(default_factory=list)
    iteration_s: float = 0.0
    #: Task-level schedule (for timeline rendering / overlap inspection).
    schedule: list = field(default_factory=list)
    #: Images actually contributing to the step (== ``batch`` unless a
    #: fault dropped workers; see :class:`FaultImpact`).
    effective_batch: int = 0
    #: Gradient renormalisation applied by the surviving workers.
    grad_renorm: float = 1.0

    @property
    def forward_s(self) -> float:
        return sum(r.forward_s for r in self.layers)

    @property
    def backward_s(self) -> float:
        return sum(r.backward_s for r in self.layers)

    @property
    def energy_j(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for report in self.layers:
            total = total + report.perf.energy_j
        # Per-worker energy -> machine energy.
        return total.scaled(self.workers)

    @property
    def images_per_s(self) -> float:
        batch = self.effective_batch or self.batch
        return batch / self.iteration_s if self.iteration_s else 0.0


class TrainingSimulator:
    """Simulates synchronous-SGD iterations of a CNN on the NDP machine."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        factors: TrafficFactors = DEFAULT_FACTORS,
    ) -> None:
        self.machine = machine or MachineConfig()
        self.model = PerfModel(self.machine.params, factors)

    def plan_layers(
        self, net: CnnSpec, config: SystemConfig
    ) -> List[ClusteringChoice]:
        """Pick a grid per layer (dynamic clustering when enabled).

        Same-shape layers (repeated VGG/WRN blocks) share one choice:
        within a plan, batch/config/workers are fixed, so the layer's
        canonical form (which ignores the display ``name``) fully keys
        the decision — a local dict probe instead of a trip through the
        process-wide content cache per repeated block.
        """
        local: dict = {}
        choices = []
        for layer in net.conv_layers:
            key = canonicalize(layer)
            choice = local.get(key)
            if choice is None:
                choice = choose_clustering(
                    layer, self.machine.batch, config, self.machine.workers,
                    self.model,
                )
                local[key] = choice
            choices.append(choice)
        return choices

    def simulate_iteration(
        self,
        net: CnnSpec,
        config: SystemConfig,
        faults: Optional[FaultImpact] = None,
    ) -> IterationResult:
        """One training iteration: forward over all layers, backward in
        reverse, weight collectives overlapped with remaining backward
        work through the task graph.

        With ``faults`` installed the same graph is built under the
        degraded machine (cached :class:`LayerPerf` objects are never
        mutated — only the task durations derived from them change):
        compute tasks stretch by the straggler factor, collectives run
        at the degraded-ring scale, and the first collective issued (the
        deepest layer's — it is the one whose watchdog detects the
        failure) additionally pays the detection + reconfiguration
        overhead.  ``faults=None`` is the fault-free path and is
        bit-identical to not having the faults package at all.
        """
        choices = self.plan_layers(net, config)
        result = IterationResult(
            config_name=config.name,
            workers=self.machine.workers,
            batch=self.machine.batch,
        )
        compute_scale = 1.0
        collective_scale = 1.0
        overhead_s = 0.0
        if faults is not None:
            compute_scale = faults.compute_slowdown
            collective_scale = faults.collective_scale
            overhead_s = faults.collective_overhead_s
            result.effective_batch = faults.effective_batch(self.machine.batch)
            result.grad_renorm = faults.grad_renorm
        graph = TaskGraph()
        previous_fprop: Optional[str] = None
        for index, choice in enumerate(choices):
            perf = choice.perf
            result.layers.append(
                LayerReport(layer=choice.layer, grid=choice.chosen, perf=perf)
            )
            duration = perf.phases["fprop"].time_s
            if faults is not None:
                duration *= compute_scale
            deps = [previous_fprop] if previous_fprop else []
            graph.add_task(
                f"f{index}",
                duration_s=duration,
                resource="compute",
                deps=deps,
            )
            previous_fprop = f"f{index}"
        previous_bprop: Optional[str] = previous_fprop
        first_collective = True
        for index in range(len(choices) - 1, -1, -1):
            perf = choices[index].perf
            update = perf.phases["update"]
            compute_side = max(update.compute_s, update.dram_s)
            duration = perf.phases["bprop"].time_s + compute_side
            collective_s = update.net_collective_s
            if faults is not None:
                duration *= compute_scale
                collective_s = collective_s * collective_scale + (
                    overhead_s if first_collective else 0.0
                )
                first_collective = False
            graph.add_task(
                f"b{index}",
                duration_s=duration,
                resource="compute",
                deps=[previous_bprop] if previous_bprop else [],
            )
            # The collective only occupies the network; it can overlap
            # with the backward compute of earlier (shallower) layers.
            graph.add_task(
                f"c{index}",
                duration_s=collective_s,
                resource="network",
                deps=[f"b{index}"],
            )
            previous_bprop = f"b{index}"
        executor = TaskExecutor(graph)
        result.iteration_s = executor.run()
        result.schedule = executor.schedule
        return result

    def evaluate_single_layer(
        self, layer: ConvLayerSpec, config: SystemConfig
    ) -> LayerReport:
        """Layer-wise evaluation used by Fig. 15/16: one layer trained in
        isolation (forward + backward including its collective)."""
        choice = choose_clustering(
            layer, self.machine.batch, config, self.machine.workers, self.model
        )
        return LayerReport(layer=layer, grid=choice.chosen, perf=choice.perf)
