"""End-to-end training-iteration simulation (paper Sections VI-A, VII).

Builds the per-iteration task graph the host constructs at training start
(forward chain, backward chain, per-layer weight collectives) and executes
it with the NDP task scheduler, letting weight collectives overlap with
the backward compute of earlier layers exactly as the pipelined collective
engine allows.  Produces per-layer and whole-network iteration times and
energy for any Table IV configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ndp.energy import EnergyBreakdown
from ..ndp.taskgraph import TaskExecutor, TaskGraph
from ..perf import canonicalize
from ..workloads.layers import ConvLayerSpec
from ..workloads.networks import CnnSpec
from .comm_model import DEFAULT_FACTORS, TrafficFactors
from .config import GridConfig, MachineConfig, SystemConfig
from .dynamic_clustering import ClusteringChoice, choose_clustering
from .perf_model import LayerPerf, PerfModel


@dataclass
class LayerReport:
    """One layer's simulated iteration under a configuration."""

    layer: ConvLayerSpec
    grid: GridConfig
    perf: LayerPerf

    @property
    def forward_s(self) -> float:
        return self.perf.forward_s

    @property
    def backward_s(self) -> float:
        return self.perf.backward_s


@dataclass
class IterationResult:
    """Whole-network result of one simulated training iteration."""

    config_name: str
    workers: int
    batch: int
    layers: List[LayerReport] = field(default_factory=list)
    iteration_s: float = 0.0
    #: Task-level schedule (for timeline rendering / overlap inspection).
    schedule: list = field(default_factory=list)

    @property
    def forward_s(self) -> float:
        return sum(r.forward_s for r in self.layers)

    @property
    def backward_s(self) -> float:
        return sum(r.backward_s for r in self.layers)

    @property
    def energy_j(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for report in self.layers:
            total = total + report.perf.energy_j
        # Per-worker energy -> machine energy.
        return total.scaled(self.workers)

    @property
    def images_per_s(self) -> float:
        return self.batch / self.iteration_s if self.iteration_s else 0.0


class TrainingSimulator:
    """Simulates synchronous-SGD iterations of a CNN on the NDP machine."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        factors: TrafficFactors = DEFAULT_FACTORS,
    ) -> None:
        self.machine = machine or MachineConfig()
        self.model = PerfModel(self.machine.params, factors)

    def plan_layers(
        self, net: CnnSpec, config: SystemConfig
    ) -> List[ClusteringChoice]:
        """Pick a grid per layer (dynamic clustering when enabled).

        Same-shape layers (repeated VGG/WRN blocks) share one choice:
        within a plan, batch/config/workers are fixed, so the layer's
        canonical form (which ignores the display ``name``) fully keys
        the decision — a local dict probe instead of a trip through the
        process-wide content cache per repeated block.
        """
        local: dict = {}
        choices = []
        for layer in net.conv_layers:
            key = canonicalize(layer)
            choice = local.get(key)
            if choice is None:
                choice = choose_clustering(
                    layer, self.machine.batch, config, self.machine.workers,
                    self.model,
                )
                local[key] = choice
            choices.append(choice)
        return choices

    def simulate_iteration(self, net: CnnSpec, config: SystemConfig) -> IterationResult:
        """One training iteration: forward over all layers, backward in
        reverse, weight collectives overlapped with remaining backward
        work through the task graph."""
        choices = self.plan_layers(net, config)
        result = IterationResult(
            config_name=config.name,
            workers=self.machine.workers,
            batch=self.machine.batch,
        )
        graph = TaskGraph()
        previous_fprop: Optional[str] = None
        for index, choice in enumerate(choices):
            perf = choice.perf
            result.layers.append(
                LayerReport(layer=choice.layer, grid=choice.chosen, perf=perf)
            )
            deps = [previous_fprop] if previous_fprop else []
            graph.add_task(
                f"f{index}",
                duration_s=perf.phases["fprop"].time_s,
                resource="compute",
                deps=deps,
            )
            previous_fprop = f"f{index}"
        previous_bprop: Optional[str] = previous_fprop
        for index in range(len(choices) - 1, -1, -1):
            perf = choices[index].perf
            update = perf.phases["update"]
            compute_side = max(update.compute_s, update.dram_s)
            graph.add_task(
                f"b{index}",
                duration_s=perf.phases["bprop"].time_s + compute_side,
                resource="compute",
                deps=[previous_bprop] if previous_bprop else [],
            )
            # The collective only occupies the network; it can overlap
            # with the backward compute of earlier (shallower) layers.
            graph.add_task(
                f"c{index}",
                duration_s=update.net_collective_s,
                resource="network",
                deps=[f"b{index}"],
            )
            previous_bprop = f"b{index}"
        executor = TaskExecutor(graph)
        result.iteration_s = executor.run()
        result.schedule = executor.schedule
        return result

    def evaluate_single_layer(
        self, layer: ConvLayerSpec, config: SystemConfig
    ) -> LayerReport:
        """Layer-wise evaluation used by Fig. 15/16: one layer trained in
        isolation (forward + backward including its collective)."""
        choice = choose_clustering(
            layer, self.machine.batch, config, self.machine.workers, self.model
        )
        return LayerReport(layer=layer, grid=choice.chosen, perf=choice.perf)
