"""Functional execution of multi-dimensional parallel training.

While :mod:`repro.core.perf_model` *times* MPT, this module *runs* it:
real numpy data flows through a grid of worker objects exactly as the
paper's Section III describes —

* the batch is sharded across clusters,
* each cluster member owns a stripe of the cluster's tiles (it transforms
  them, and later inverse-transforms the gathered outputs),
* tile elements are scattered to their owning groups, each worker
  computes the element-wise GEMMs against its weight slice,
* output elements are gathered back to the tile owners,
* weight gradients are all-reduced around each group's ring through the
  NDP Reduce-block engine.

Every transfer is counted, so the measured traffic can be cross-checked
against the Section III-C closed forms, and the whole pipeline is
verified bit-level against single-worker training (see
``tests/core/test_functional.py``).  Activation prediction can be enabled
on the gather path; because the predictor admits no false negatives the
post-ReLU output remains exact while predicted-dead tiles are simply not
transferred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..contracts import cost, shaped
from ..ndp.comm_unit import CollectiveEngine
from ..prediction.predictor import predict_2d
from ..prediction.quantization import NonUniformQuantizer, QuantizerConfig
from ..winograd.cook_toom import WinogradTransform
from ..winograd.tiling import TileGrid, assemble_output, extract_tiles
from .config import GridConfig
from .partition import partition_elements, shard_batch

BYTES = 4


@shaped("TS, C, E, NG -> RB")
@cost(ret="floordiv(4*TS*C*E*(NG-1), NG)")
def remote_scatter_bytes(tiles: int, channels: int, elems: int, num_groups: int) -> int:
    """Bytes crossing the network when ``elems`` tile elements of
    ``tiles x channels`` values are scattered to their owning groups.

    Each tile owner keeps its own group's elements, so exactly
    ``(N_g - 1)/N_g`` of the payload is remote (paper Section III-C).
    Integer arithmetic: the division is exact up to the floor, and the
    checked closed form is ``floor(4*TS*C*E*(NG-1) / NG)``.
    """
    total = tiles * channels * elems * BYTES
    return total * (num_groups - 1) // num_groups


@shaped("TS, C, E, NG -> RB")
@cost(ret="floordiv(4*TS*C*E*(NG-1), NG)")
def remote_gather_bytes(tiles: int, channels: int, elems: int, num_groups: int) -> int:
    """Bytes crossing the network when computed tile elements are
    gathered back to their tile owners — same ``(N_g - 1)/N_g`` remote
    fraction as the scatter, counted separately per counter class."""
    total = tiles * channels * elems * BYTES
    return total * (num_groups - 1) // num_groups


@shaped("SB, NC -> AB")
@cost(ret="2*(NC-1)*SB")
def allreduce_ring_bytes(slice_bytes: int, num_clusters: int) -> int:
    """Total ring all-reduce bytes for one replicated gradient slice.

    Every worker sends ``2*(N_c - 1)`` chunks of ``slice/N_c`` bytes
    (reduce-scatter + all-gather); summed over the ``N_c`` ring members
    that is exactly ``2*(N_c - 1)*slice_bytes`` — computed in integer
    form rather than via the per-worker float fraction."""
    return 2 * (num_clusters - 1) * slice_bytes


@dataclass
class TrafficCounters:
    """Bytes moved by each MPT communication class (whole machine)."""

    scatter_bytes: int = 0
    gather_bytes: int = 0
    gather_bytes_skipped: int = 0
    prediction_side_channel_bytes: int = 0
    allreduce_bytes: int = 0

    def reset(self) -> None:
        self.scatter_bytes = 0
        self.gather_bytes = 0
        self.gather_bytes_skipped = 0
        self.prediction_side_channel_bytes = 0
        self.allreduce_bytes = 0


@dataclass
class MptWorker:
    """One worker: its grid position and its Winograd-domain weight slice."""

    group: int
    cluster: int
    element_ids: List[int]
    #: Weight slice ``(J, I, len(element_ids))``.
    weights: np.ndarray
    grad: Optional[np.ndarray] = None

    @shaped("(E,TS,I) -> (E,TS,J)")
    @cost(flops="2*E*TS*I*J", mem="4*E*TS*J")
    def compute_forward(self, x_elements: np.ndarray) -> np.ndarray:
        """Element-wise GEMMs: ``(E, tiles, I) @ (E, I, J) -> (E, tiles, J)``."""
        return np.matmul(x_elements, self.weights.transpose(2, 1, 0))

    @shaped("(E,TS,J) -> (E,TS,I)")
    @cost(flops="2*E*TS*I*J", mem="4*E*TS*I")
    def compute_backward(self, dy_elements: np.ndarray) -> np.ndarray:
        """``dX(e) = dY(e) @ W(e)^T``."""
        return np.matmul(dy_elements, self.weights.transpose(2, 0, 1))

    @shaped("(E,TS,I), (E,TS,J) -> (J,I,E)")
    @cost(flops="2*E*TS*I*J", mem="4*E*I*J")
    def compute_weight_grad(
        self, x_elements: np.ndarray, dy_elements: np.ndarray
    ) -> np.ndarray:
        """``dW(e) = X(e)^T @ dY(e)`` accumulated over the local shard."""
        grad = np.matmul(x_elements.transpose(0, 2, 1), dy_elements)
        # (E, I, J) -> (J, I, E) to match the weight layout.
        return grad.transpose(2, 1, 0)


class MptLayerMachine:
    """A Winograd convolution layer executed with MPT on an
    ``N_g x N_c`` worker grid.

    Parameters
    ----------
    in_channels, out_channels:
        Layer channel counts.
    transform:
        The ``F(m, r)`` transform.
    grid:
        Worker organisation.  ``grid.num_groups`` must not exceed the
        tile element count.
    pad:
        Convolution padding.
    initial_weights:
        Full Winograd-domain weights ``(J, I, T, T)``; sliced across
        groups element-wise (round-robin).
    predict:
        Enable activation prediction on the forward gather (lossless for
        the post-ReLU output).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        transform: WinogradTransform,
        grid: GridConfig,
        initial_weights: np.ndarray,
        pad: int = 1,
        predict: bool = False,
        quantizer_config: Optional[QuantizerConfig] = None,
    ) -> None:
        t2 = transform.tile**2
        if grid.num_groups > t2:
            raise ValueError(
                f"{grid.num_groups} groups exceed {t2} tile elements"
            )
        if initial_weights.shape != (
            out_channels,
            in_channels,
            transform.tile,
            transform.tile,
        ):
            raise ValueError(f"bad weight shape {initial_weights.shape}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.transform = transform
        self.grid = grid
        self.pad = pad
        self.predict = predict
        self.quantizer_config = quantizer_config or QuantizerConfig(
            levels=64, regions=4
        )
        self.counters = TrafficCounters()
        self.collective = CollectiveEngine(chunk_elems=64)

        # Element ownership: element e belongs to group e % N_g
        # (see repro.core.partition for the contract-checked split).
        element_parts = partition_elements(t2, grid.num_groups)
        flat_weights = initial_weights.reshape(out_channels, in_channels, t2)
        self.workers: Dict[Tuple[int, int], MptWorker] = {}
        for g in range(grid.num_groups):
            element_ids = element_parts[g]
            for c in range(grid.num_clusters):
                self.workers[(g, c)] = MptWorker(
                    group=g,
                    cluster=c,
                    element_ids=element_ids,
                    weights=flat_weights[:, :, element_ids].copy(),
                )
        self._forward_state: Optional[dict] = None

    # ------------------------------------------------------------------
    def full_weights(self) -> np.ndarray:
        """Reassemble the full ``(J, I, T, T)`` weights from any cluster's
        slices (all clusters hold identical replicas after an update)."""
        t2 = self.transform.tile**2
        flat = np.zeros((self.out_channels, self.in_channels, t2))
        for g in range(self.grid.num_groups):
            worker = self.workers[(g, 0)]
            flat[:, :, worker.element_ids] = worker.weights
        return flat.reshape(
            self.out_channels, self.in_channels, self.transform.tile, self.transform.tile
        )

    def _shard_batch(self, batch: int) -> List[np.ndarray]:
        shards = shard_batch(batch, self.grid.num_clusters)
        return [np.asarray(shard, dtype=np.intp) for shard in shards]

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, apply_relu: bool = False) -> np.ndarray:
        """Run fprop for the whole batch across the worker grid."""
        batch = x.shape[0]
        shards = self._shard_batch(batch)
        grid_geom = TileGrid(
            height=x.shape[2], width=x.shape[3], pad=self.pad,
            m=self.transform.m, r=self.transform.r,
        )
        t2 = self.transform.tile**2
        ng = self.grid.num_groups
        outputs = []
        state: dict = {"grid_geom": grid_geom, "clusters": []}
        for c, shard in enumerate(shards):
            # Tile owners (cluster members, striped) transform spatial
            # tiles; flattened view: (n_tiles_total, I, T^2).
            spatial_tiles = extract_tiles(x[shard], grid_geom)
            wd_tiles = self.transform.transform_input(spatial_tiles)
            b, i, th, tw, t, _ = wd_tiles.shape
            flat = wd_tiles.transpose(0, 2, 3, 1, 4, 5).reshape(
                b * th * tw, i, t * t
            )
            n_tiles = flat.shape[0]

            # Scatter: element e goes to the worker of group owner(e).
            # Only (N_g-1)/N_g of the data crosses the network (each tile
            # owner keeps its own group's elements); counted accordingly.
            per_group_inputs = {}
            for g in range(ng):
                worker = self.workers[(g, c)]
                elems = worker.element_ids
                # (E, tiles, I)
                x_elements = flat[:, :, elems].transpose(2, 0, 1)
                per_group_inputs[g] = x_elements
                self.counters.scatter_bytes += remote_scatter_bytes(
                    n_tiles, i, len(elems), ng
                )

            # Compute + gather output elements back to tile owners.
            out_flat = np.zeros((n_tiles, self.out_channels, t2))
            for g in range(ng):
                worker = self.workers[(g, c)]
                y_elements = worker.compute_forward(per_group_inputs[g])
                out_flat[:, :, worker.element_ids] = y_elements.transpose(1, 2, 0)

            out_tiles = out_flat.reshape(b, th, tw, self.out_channels, t, t)
            out_tiles = out_tiles.transpose(0, 3, 1, 2, 4, 5)

            if self.predict:
                dead_mask = self._predict_and_count(out_tiles, ng)
                # Predicted-dead tiles are not gathered: the tile owner
                # reconstructs them as zero (their true spatial outputs
                # are all <= 0, so the post-ReLU result is unchanged).
                out_tiles = out_tiles.copy()
                out_tiles[dead_mask] = 0.0
            else:
                self.counters.gather_bytes += remote_gather_bytes(
                    n_tiles, self.out_channels, t2, ng
                )

            y_spatial = assemble_output(
                self.transform.inverse_transform(out_tiles), grid_geom
            )
            if apply_relu:
                # Predicted-dead tiles were never gathered; their spatial
                # outputs are exactly zero post-ReLU (no false negatives),
                # so applying ReLU here reproduces the exact result.
                y_spatial = np.maximum(y_spatial, 0.0)
            elif self.predict:
                raise ValueError(
                    "activation prediction requires apply_relu=True: "
                    "losslessness only holds for the post-ReLU output"
                )
            outputs.append(y_spatial)
            state["clusters"].append(
                {"input_elements": per_group_inputs, "tiles_shape": (b, th, tw)}
            )
        self._forward_state = state
        return np.concatenate(outputs, axis=0)

    def _predict_and_count(self, out_tiles: np.ndarray, ng: int) -> np.ndarray:
        """Run 2D activation prediction and count the skipped traffic."""
        sigma = float(out_tiles.std()) or 1.0
        quantizer = NonUniformQuantizer(self.quantizer_config, sigma)
        result = predict_2d(out_tiles, self.transform, quantizer)
        assert result.false_negatives == 0
        b, out_ch, th, tw, t, _ = out_tiles.shape
        total = remote_gather_bytes(b * th * tw, out_ch, t * t, ng)
        skipped = total * result.predicted_ratio
        fp32_bits = 32.0
        side_channel = total * (quantizer.config.bits / fp32_bits)
        self.counters.gather_bytes += int(total - skipped)
        self.counters.gather_bytes_skipped += int(skipped)
        self.counters.prediction_side_channel_bytes += int(side_channel)
        return result.dead_mask

    # ------------------------------------------------------------------
    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Run bprop + updateGrad: returns dx; gradients are reduced
        around each group's ring and stored on every worker."""
        if self._forward_state is None:
            raise RuntimeError("backward called before forward")
        from ..winograd.tiling import assemble_output_adjoint, extract_tiles_adjoint

        grid_geom = self._forward_state["grid_geom"]
        shards = self._shard_batch(dy.shape[0])
        ng, nc = self.grid.num_groups, self.grid.num_clusters
        t2 = self.transform.tile**2
        dx_parts = []
        partial_grads: Dict[int, List[np.ndarray]] = {g: [] for g in range(ng)}
        for c, shard in enumerate(shards):
            cluster_state = self._forward_state["clusters"][c]
            b, th, tw = cluster_state["tiles_shape"]
            dy_tiles = assemble_output_adjoint(dy[shard], grid_geom)
            dy_wd = self.transform.inverse_transform_transposed(dy_tiles)
            flat_dy = dy_wd.transpose(0, 2, 3, 1, 4, 5).reshape(
                b * th * tw, self.out_channels, t2
            )
            dx_flat = np.zeros((b * th * tw, self.in_channels, t2))
            for g in range(ng):
                worker = self.workers[(g, c)]
                elems = worker.element_ids
                dy_elements = flat_dy[:, :, elems].transpose(2, 0, 1)
                self.counters.scatter_bytes += remote_scatter_bytes(
                    b * th * tw, self.out_channels, len(elems), ng
                )
                # Weight gradient for this worker's slice and shard.
                partial = worker.compute_weight_grad(
                    cluster_state["input_elements"][g], dy_elements
                )
                partial_grads[g].append(partial)
                dx_elements = worker.compute_backward(dy_elements)
                dx_flat[:, :, elems] = dx_elements.transpose(1, 2, 0)
                self.counters.gather_bytes += remote_gather_bytes(
                    b * th * tw, self.in_channels, len(elems), ng
                )
            dx_wd = dx_flat.reshape(b, th, tw, self.in_channels,
                                    self.transform.tile, self.transform.tile)
            dx_wd = dx_wd.transpose(0, 3, 1, 2, 4, 5)
            dx_tiles = self.transform.transform_input_transposed(dx_wd)
            dx_parts.append(extract_tiles_adjoint(dx_tiles, grid_geom))

        # Ring all-reduce of each group's gradient slices across clusters.
        for g in range(ng):
            reduced, _ = self.collective.allreduce(partial_grads[g], f"dW-g{g}")
            slice_bytes = partial_grads[g][0].size * BYTES
            self.counters.allreduce_bytes += allreduce_ring_bytes(slice_bytes, nc)
            for c in range(nc):
                self.workers[(g, c)].grad = reduced[c]
        return np.concatenate(dx_parts, axis=0)

    def apply_update(self, lr: float) -> None:
        """SGD step on every worker's slice (post all-reduce they are
        identical across clusters)."""
        for worker in self.workers.values():
            if worker.grad is None:
                raise RuntimeError("apply_update called before backward")
            worker.weights -= lr * worker.grad
            worker.grad = None


class MptNetworkMachine:
    """A stack of MPT layers with ReLU between them — distributed
    execution of a whole (convolutional) network on the worker grid.

    The spatial activations between layers stay sharded across clusters
    (the batch dimension), exactly as on the real machine: only tile
    elements and weight gradients ever cross the network.
    """

    def __init__(self, layers: List[MptLayerMachine]) -> None:
        if not layers:
            raise ValueError("need at least one layer")
        grid = layers[0].grid
        for layer in layers:
            if layer.grid != grid:
                raise ValueError("all layers must share one worker grid")
        self.layers = layers
        self.grid = grid

    def forward(self, x: np.ndarray) -> np.ndarray:
        """fprop through every layer with ReLU after each (matching the
        Table II layer structure)."""
        for layer in self.layers:
            x = layer.forward(x, apply_relu=True)
            layer._last_output = x  # for the ReLU mask in backward
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """bprop + updateGrad through every layer (ReLU masks applied)."""
        for layer in reversed(self.layers):
            dy = dy * (layer._last_output > 0)
            dy = layer.backward(dy)
        return dy

    def apply_update(self, lr: float) -> None:
        for layer in self.layers:
            layer.apply_update(lr)

    @property
    def counters(self) -> TrafficCounters:
        """Aggregate traffic over all layers."""
        total = TrafficCounters()
        for layer in self.layers:
            total.scatter_bytes += layer.counters.scatter_bytes
            total.gather_bytes += layer.counters.gather_bytes
            total.gather_bytes_skipped += layer.counters.gather_bytes_skipped
            total.prediction_side_channel_bytes += (
                layer.counters.prediction_side_channel_bytes
            )
            total.allreduce_bytes += layer.counters.allreduce_bytes
        return total
