"""Communication-volume model (paper Section III-C, Figs. 6 and 7).

Pure byte counting per worker per training iteration — no timing.  The
two traffic classes:

* **Weight gradients** — ring reduce + broadcast of each worker's weight
  slice within its group: ``2 * (N_c - 1)/N_c * |W| / N_g`` bytes per
  worker (|W| in the update domain: spatial ``r^2`` weights for DP,
  Winograd ``T^2`` weights for MPT).
* **Tile transfer** — scatter of input tiles and gather of output tiles
  within each cluster during ``fprop`` and the mirrored pair during
  ``bprop``: each worker holds ``[Tiles] / (N_c N_g)`` of the batch's
  tile data and exchanges the ``(N_g - 1)/N_g`` portion owned by other
  group slices.

Activation prediction and zero-skipping scale the respective components
(Section V), with the 1D-transform volume saving applied automatically
when the group count allows whole-line ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..winograd.cook_toom import WinogradTransform, make_transform
from ..workloads.layers import ConvLayerSpec
from .config import GridConfig, SystemConfig

BYTES = 4  # FP32


@dataclass(frozen=True)
class TrafficFactors:
    """Multiplicative traffic survival factors (1.0 = no reduction).

    Defaults reproduce the paper's Section V-B numbers: activation
    prediction removes 34.0% (2D) / 78.1% (1D) of gather traffic and
    zero-skipping removes 39.3% / 64.7% of scatter traffic.  The
    :mod:`repro.prediction` statistics harness measures these same
    factors from data; see ``tests/integration``.
    """

    gather_2d: float = 1.0 - 0.340
    gather_1d: float = 1.0 - 0.781
    scatter_2d: float = 1.0 - 0.393
    scatter_1d: float = 1.0 - 0.647

    def gather(self, one_d: bool) -> float:
        return self.gather_1d if one_d else self.gather_2d

    def scatter(self, one_d: bool) -> float:
        return self.scatter_1d if one_d else self.scatter_2d


DEFAULT_FACTORS = TrafficFactors()


def uses_1d_transfer(grid: GridConfig, transform: WinogradTransform) -> bool:
    """Whether each worker owns complete tile lines (enables the 1D
    transform optimisation and 1D predict, Section V-A)."""
    return grid.num_groups <= transform.tile


@dataclass
class CommVolume:
    """Per-worker communication bytes for one layer iteration."""

    weight_bytes: float = 0.0
    scatter_fprop: float = 0.0
    gather_fprop: float = 0.0
    scatter_bprop: float = 0.0
    gather_bprop: float = 0.0

    @property
    def tile_bytes(self) -> float:
        return (
            self.scatter_fprop
            + self.gather_fprop
            + self.scatter_bprop
            + self.gather_bprop
        )

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.tile_bytes


def transform_for(config: SystemConfig, grid: GridConfig, kernel: int) -> WinogradTransform:
    """The Winograd transform a configuration runs (Section VII-A):
    ``F(2x2, r x r)`` with multiple groups, ``F(4x4, 3x3)`` for a single
    group with 3x3 weights."""
    if grid.num_groups > 1:
        return make_transform(2, kernel)
    if kernel == 3:
        return make_transform(4, 3)
    return make_transform(2, kernel)


def weight_collective_bytes(
    layer: ConvLayerSpec,
    config: SystemConfig,
    grid: GridConfig,
    transform: Optional[WinogradTransform],
) -> float:
    """Per-worker ring reduce+broadcast bytes for one iteration."""
    if grid.num_clusters == 1:
        return 0.0
    if config.update_domain == "winograd":
        if transform is None:
            raise ValueError("winograd update domain needs a transform")
        # Load is balanced across groups by splitting channel ranges
        # when the element count does not divide the group count, so the
        # per-worker slice is the exact average.
        elems = transform.tile**2 / grid.num_groups
        weight_slice = layer.in_channels * layer.out_channels * elems
    else:
        weight_slice = layer.weight_count // grid.num_groups
    slice_bytes = weight_slice * BYTES
    nc = grid.num_clusters
    return 2.0 * (nc - 1) / nc * slice_bytes


def tile_transfer_bytes(
    layer: ConvLayerSpec,
    batch: int,
    grid: GridConfig,
    transform: WinogradTransform,
    config: SystemConfig,
    factors: TrafficFactors = DEFAULT_FACTORS,
) -> CommVolume:
    """Per-worker tile scatter/gather bytes for one iteration."""
    volume = CommVolume()
    ng = grid.num_groups
    if ng == 1:
        return volume
    batch_per_cluster = batch / grid.num_clusters
    tiles = batch_per_cluster * layer.tiles_per_image(transform.m)
    t2 = transform.tile**2
    one_d = uses_1d_transfer(grid, transform)
    # 1D-capable configurations gather half-transformed lines
    # (T x m values per tile instead of T x T), Section IV/V.
    volume_1d = transform.m / transform.tile if one_d else 1.0

    per_worker = (ng - 1) / ng / ng * tiles * t2 * BYTES
    base_in = per_worker * layer.in_channels
    base_out = per_worker * layer.out_channels

    if config.prediction:
        # fprop: zero-skip the ReLU-sparse input scatter; predict the
        # output gather (the gather survival factors already include the
        # 1D volume saving). bprop: dy is masked by the ReLU derivative
        # so zero-skip applies to its scatter; the dX gather skips tiles
        # whose input neurons were all ReLU-dead — exact knowledge from
        # the input activation map stored at fprop (Section V-B), so the
        # 2D gather survival factor applies (without the 1D volume term,
        # which the full inverse transform cannot exploit).
        volume.scatter_fprop = base_in * factors.scatter(one_d)
        volume.gather_fprop = base_out * (factors.gather(one_d) if layer.has_relu
                                          else volume_1d)
        volume.scatter_bprop = base_out * factors.scatter(one_d)
        volume.gather_bprop = base_in * factors.gather_2d
    else:
        # Without the prediction engine only the structural 1D volume
        # saving applies to the fprop gather.
        volume.scatter_fprop = base_in
        volume.gather_fprop = base_out * volume_1d
        volume.scatter_bprop = base_out
        volume.gather_bprop = base_in
    return volume


def layer_comm_volume(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    grid: GridConfig,
    factors: TrafficFactors = DEFAULT_FACTORS,
    transform: Optional[WinogradTransform] = None,
) -> CommVolume:
    """Full per-worker communication volume of one layer iteration.

    ``transform`` overrides the paper's default transform rule (used by
    the transform-search extension).
    """
    if config.conv == "direct":
        volume = CommVolume()
        volume.weight_bytes = weight_collective_bytes(layer, config, grid, None)
        return volume
    if transform is None:
        transform = transform_for(config, grid, layer.kernel)
    volume = tile_transfer_bytes(layer, batch, grid, transform, config, factors)
    volume.weight_bytes = weight_collective_bytes(layer, config, grid, transform)
    return volume
