"""Trace generation: turn one MPT layer iteration into network messages.

Bridges the analytic layer and the event simulator: for a (small) worker
grid, generates the concrete point-to-point messages of the tile
scatter/gather phases and replays them on the simulated hybrid topology.
This validates the performance model's all-to-all term against a full
machine — groups, clusters and link classes all in place — rather than a
standalone FBFLY.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netsim.engine import FaultHooks, Message, NetworkSimulator
from ..netsim.topology import GridLayout, Topology, hybrid
from ..params import DEFAULT_PARAMS, HardwareParams
from ..workloads.layers import ConvLayerSpec
from .comm_model import DEFAULT_FACTORS, TrafficFactors, layer_comm_volume
from .config import GridConfig, SystemConfig


@dataclass
class TileTransferTrace:
    """The per-pair messages of one phase's tile transfer."""

    messages: List[Message]
    bytes_per_pair: int
    phase: str


def build_tile_transfer_trace(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    grid: GridConfig,
    layout: GridLayout,
    phase: str = "fprop",
    factors: TrafficFactors = DEFAULT_FACTORS,
) -> TileTransferTrace:
    """Messages for the scatter+gather of one phase in every cluster.

    Each cluster member exchanges an equal share with every other member
    of its cluster (uniform all-to-all, as the element/tile striping
    produces).
    """
    if phase not in ("fprop", "bprop"):
        raise ValueError(f"phase must be fprop or bprop, got {phase!r}")
    volume = layer_comm_volume(layer, batch, config, grid, factors)
    if phase == "fprop":
        per_worker = volume.scatter_fprop + volume.gather_fprop
    else:
        per_worker = volume.scatter_bprop + volume.gather_bprop
    ng = grid.num_groups
    if ng <= 1 or per_worker <= 0:
        return TileTransferTrace(messages=[], bytes_per_pair=0, phase=phase)
    bytes_per_pair = max(1, round(per_worker / (ng - 1)))
    messages = []
    for cluster in range(grid.num_clusters):
        members = layout.cluster_members(cluster)
        for src in members:
            for dst in members:
                if src != dst:
                    messages.append(
                        Message(src=src, dst=dst, size_bytes=bytes_per_pair,
                                tag=f"{phase}-tile")
                    )
    return TileTransferTrace(
        messages=messages, bytes_per_pair=bytes_per_pair, phase=phase
    )


@dataclass
class ReplayResult:
    """Outcome of replaying a trace on the event simulator."""

    finish_time_s: float
    messages: int
    total_bytes: int


def replay_on_machine(
    trace: TileTransferTrace,
    topology: Topology,
    params: HardwareParams = DEFAULT_PARAMS,
    faults: "Optional[FaultHooks]" = None,
) -> ReplayResult:
    """Inject every message at t = 0 and run to completion.

    ``faults`` (a :class:`repro.netsim.engine.FaultHooks`, e.g. a
    :class:`repro.faults.FaultInjector`) subjects the replay to link
    outages and packet loss; ``None`` replays on the perfect machine,
    bit-identically to before the fault path existed.
    """
    sim = NetworkSimulator(
        topology, params, packet_bytes=params.data_packet_bytes, faults=faults
    )
    state = {"finish": 0.0}

    def done(_msg: Message, time: float) -> None:
        state["finish"] = max(state["finish"], time)

    for message in trace.messages:
        message.on_complete = done
        sim.send(message, start_time=0.0)
    sim.run()
    return ReplayResult(
        finish_time_s=state["finish"],
        messages=len(trace.messages),
        total_bytes=sum(m.size_bytes for m in trace.messages),
    )


def trace_validate_layer(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    grid: GridConfig,
    params: HardwareParams = DEFAULT_PARAMS,
) -> dict:
    """Build the machine, replay one fprop tile transfer, and compare the
    simulated time with the closed form used by the performance model."""
    from ..netsim.collectives import all_to_all_time, fbfly_injection_rate

    topology, layout = hybrid(grid.num_groups, grid.num_clusters, params)
    trace = build_tile_transfer_trace(layer, batch, config, grid, layout)
    replay = replay_on_machine(trace, topology, params)
    closed = all_to_all_time(
        trace.bytes_per_pair,
        grid.num_groups,
        fbfly_injection_rate(grid.num_groups, params),
        params=params,
    )
    return {
        "simulated_s": replay.finish_time_s,
        "closed_form_s": closed,
        "ratio": replay.finish_time_s / closed if closed else float("nan"),
        "messages": replay.messages,
    }
