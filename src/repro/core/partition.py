"""Worker-grid partition functions for MPT (paper Section III).

These are the two data decompositions the machine performs: tile
*elements* are scattered round-robin across the ``N_g`` groups
(element ``e`` belongs to group ``e % N_g``), and the *batch* is
sharded contiguously across the ``N_c`` clusters.

Each function carries a :func:`repro.contracts.partitioned` contract
declaring that its result must be a disjoint exact cover of
``range(domain)`` split into ``parts`` groups.  The contract is
enforced two ways: statically by the ``SHAPE005`` rule (which executes
the function over a battery of small grids, including the
non-divisible ones dynamic clustering produces) and at runtime under
``REPRO_CHECK_SHAPES=1``.
"""

from __future__ import annotations

from typing import List

from ..contracts import partitioned


@partitioned(domain="t2", parts="ng")
def partition_elements(t2: int, ng: int) -> List[List[int]]:
    """Round-robin ownership of the ``t2 = T^2`` tile elements over
    ``ng`` groups: element ``e`` belongs to group ``e % ng``.

    Returns one sorted id list per group; group ``g``'s slice is what
    its workers hold of the Winograd-domain weights.
    """
    if ng < 1:
        raise ValueError(f"need at least one group, got {ng}")
    return [[e for e in range(t2) if e % ng == g] for g in range(ng)]


@partitioned(domain="batch", parts="nc")
def shard_batch(batch: int, nc: int) -> List[List[int]]:
    """Contiguous equal shards of ``batch`` samples over ``nc`` clusters.

    MPT keeps the batch dimension resident: each cluster runs its shard
    end to end, so the shards must tile ``range(batch)`` exactly.  The
    machine model requires divisibility (raises otherwise) rather than
    silently dropping or duplicating samples.
    """
    if nc < 1:
        raise ValueError(f"need at least one cluster, got {nc}")
    if batch % nc:
        raise ValueError(f"batch {batch} not divisible by {nc} clusters")
    per = batch // nc
    return [list(range(c * per, (c + 1) * per)) for c in range(nc)]
