"""Multi-dimensional parallel training — the paper's core contribution."""

from .comm_model import (
    DEFAULT_FACTORS,
    CommVolume,
    TrafficFactors,
    layer_comm_volume,
    tile_transfer_bytes,
    transform_for,
    uses_1d_transfer,
    weight_collective_bytes,
)
from .config import (
    GridConfig,
    MachineConfig,
    SystemConfig,
    clustering_candidates,
    d_dp,
    default_grid,
    table4_configs,
    w_dp,
    w_mp,
    w_mp_plus,
    w_mp_plus_plus,
)
from .dynamic_clustering import (
    ClusteringChoice,
    candidate_grids,
    choose_clustering,
    choose_clustering_and_transform,
    replan_for_survivors,
)
from .functional import (
    MptLayerMachine,
    MptNetworkMachine,
    MptWorker,
    TrafficCounters,
)
from .perf_model import LayerPerf, PerfModel, PhasePerf, powered_links
from .trainer import FaultImpact, IterationResult, LayerReport, TrainingSimulator

__all__ = [
    "DEFAULT_FACTORS",
    "CommVolume",
    "TrafficFactors",
    "layer_comm_volume",
    "tile_transfer_bytes",
    "transform_for",
    "uses_1d_transfer",
    "weight_collective_bytes",
    "GridConfig",
    "MachineConfig",
    "SystemConfig",
    "clustering_candidates",
    "d_dp",
    "default_grid",
    "table4_configs",
    "w_dp",
    "w_mp",
    "w_mp_plus",
    "w_mp_plus_plus",
    "ClusteringChoice",
    "candidate_grids",
    "choose_clustering",
    "choose_clustering_and_transform",
    "replan_for_survivors",
    "MptLayerMachine",
    "MptNetworkMachine",
    "MptWorker",
    "TrafficCounters",
    "LayerPerf",
    "PerfModel",
    "PhasePerf",
    "powered_links",
    "FaultImpact",
    "IterationResult",
    "LayerReport",
    "TrainingSimulator",
]
