"""Dynamic clustering: per-layer ``(N_g, N_c)`` selection (paper Section IV).

Neural networks have fixed layer structures, so the communication volumes
and link bandwidths — and therefore the best worker organisation — can be
computed before training starts.  The optimiser below evaluates each
candidate configuration with the performance model and picks the one that
minimises the layer's iteration time; reconfiguration between layers only
re-routes tile and weight traffic through the host bridges and costs no
data movement (Section IV), so no switching penalty is charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..params import DEFAULT_PARAMS, HardwareParams
from ..perf import memoize_sweep, phase
from ..winograd.cook_toom import WinogradTransform
from ..workloads.layers import ConvLayerSpec
from .comm_model import DEFAULT_FACTORS, TrafficFactors, transform_for
from .config import GridConfig, SystemConfig, clustering_candidates, default_grid
from .perf_model import LayerPerf, PerfModel


@dataclass
class ClusteringChoice:
    """Chosen grid for one layer, with the per-candidate evaluation."""

    layer: ConvLayerSpec
    chosen: GridConfig
    evaluations: Dict[GridConfig, LayerPerf]
    #: Transform chosen by the transform-search extension (None = the
    #: paper's default rule).
    chosen_transform: Optional[WinogradTransform] = None

    @property
    def perf(self) -> LayerPerf:
        return self.evaluations[self.chosen]


def candidate_grids(
    layer: ConvLayerSpec, config: SystemConfig, workers: int
) -> Sequence[GridConfig]:
    """Valid grids for a layer: pure DP always; MPT splits limited by the
    tile element count of the transform the split would use."""
    if not config.mpt:
        return [GridConfig(1, workers)]
    multi_group = transform_for(config, GridConfig(4, max(1, workers // 4)), layer.kernel)
    return clustering_candidates(workers, multi_group.tile**2)


def choose_clustering(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    workers: int,
    model: Optional[PerfModel] = None,
) -> ClusteringChoice:
    """Pick the grid minimising the layer's predicted iteration time.

    When the configuration has dynamic clustering disabled the fixed
    default grid is returned (still evaluated, for reporting).

    The choice is memoized process-wide on the contents of
    ``(layer, batch, config, workers)`` plus the model's params and
    traffic factors — network sweeps re-optimise identical layers at
    every worker count.  The returned :class:`ClusteringChoice` is
    shared across equal calls and must be treated as read-only.
    """
    model = model or PerfModel()
    return _choose_clustering_cached(
        layer, batch, config, workers, model.params, model.factors
    )


@memoize_sweep
def _choose_clustering_cached(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    workers: int,
    params: HardwareParams = DEFAULT_PARAMS,
    factors: TrafficFactors = DEFAULT_FACTORS,
) -> ClusteringChoice:
    model = PerfModel(params=params, factors=factors)
    # Call the model implementation directly: this function's own cache
    # already keys on (layer, batch, config, workers, params, factors),
    # so routing per-grid evaluations through ``evaluate_layer_cached``
    # would only rebuild content keys that can never hit here.
    with phase("model"):
        if not config.dynamic_clustering:
            multi_group = transform_for(
                config, GridConfig(4, max(1, workers // 4)), layer.kernel
            )
            grid = default_grid(config, workers, multi_group.tile**2)
            perf = model._evaluate_layer_impl(layer, batch, config, grid, None)
            return ClusteringChoice(
                layer=layer, chosen=grid, evaluations={grid: perf}
            )

        evaluations: Dict[GridConfig, LayerPerf] = {}
        best: Optional[GridConfig] = None
        best_time = float("inf")
        for grid in candidate_grids(layer, config, workers):
            perf = model._evaluate_layer_impl(layer, batch, config, grid, None)
            evaluations[grid] = perf
            if perf.total_s < best_time:
                best_time = perf.total_s
                best = grid
        assert best is not None
        return ClusteringChoice(layer=layer, chosen=best, evaluations=evaluations)


def replan_for_survivors(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    workers: int,
    dead_workers: Sequence[int],
    model: Optional[PerfModel] = None,
) -> ClusteringChoice:
    """Re-run dynamic clustering after permanent worker loss.

    Degraded-ring splicing (:mod:`repro.faults`) keeps the iteration
    alive the moment a worker dies; at the next iteration boundary the
    host can instead *re-plan* — the clustering optimiser already works
    for any worker count, so the surviving machine simply gets a fresh
    ``(N_g, N_c)`` choice.  Memoization makes repeated re-plans for the
    same survivor count free.
    """
    survivors = workers - len(frozenset(dead_workers))
    if survivors < 1:
        raise ValueError("no surviving workers to re-plan for")
    return choose_clustering(layer, batch, config, survivors, model)


def choose_clustering_and_transform(
    layer: ConvLayerSpec,
    batch: int,
    config: SystemConfig,
    workers: int,
    model: Optional[PerfModel] = None,
) -> ClusteringChoice:
    """Extension beyond the paper: jointly search the grid *and* the
    Winograd transform.

    The paper fixes F(2x2, r x r) for multi-group configurations "to
    have smaller Winograd-domain weights" and F(4x4, 3x3) for a single
    group.  But a multi-group F(4x4) trades bigger weight slices for
    ~44% less tile-transfer volume and 1.78x fewer MACs, which can win
    on tile-bound mid layers.  This optimiser evaluates every
    (grid, transform) pair and returns the best.
    """
    from ..winograd.cook_toom import make_transform

    model = model or PerfModel()
    candidates = []
    for grid in candidate_grids(layer, config, workers):
        default_tr = transform_for(config, grid, layer.kernel)
        options = {(default_tr.m, default_tr.r): default_tr}
        if layer.kernel == 3:
            for m in (2, 4):
                tr = make_transform(m, 3)
                if grid.num_groups <= tr.tile**2:
                    options[(m, 3)] = tr
        for tr in options.values():
            candidates.append((grid, tr))
    best = None
    best_perf = None
    evaluations: Dict[GridConfig, LayerPerf] = {}
    for grid, tr in candidates:
        perf = model.evaluate_layer(layer, batch, config, grid, transform=tr)
        if best_perf is None or perf.total_s < best_perf.total_s:
            best, best_perf = (grid, tr), perf
        # Keep the best evaluation seen per grid for reporting.
        if grid not in evaluations or perf.total_s < evaluations[grid].total_s:
            evaluations[grid] = perf
    assert best is not None and best_perf is not None
    return ClusteringChoice(
        layer=layer,
        chosen=best[0],
        evaluations=evaluations,
        chosen_transform=best[1],
    )
