"""System configurations (paper Table IV) and MPT grid arithmetic.

The five evaluated systems:

========  ==========================================================
``d_dp``   Direct convolution, data parallelism (updates spatial w)
``w_dp``   Winograd convolution, data parallelism (updates spatial w)
``w_mp``   Winograd + MPT (updates Winograd-domain W)
``w_mp+``  w_mp + activation prediction / zero-skip
``w_mp++`` w_mp + activation prediction / zero-skip + dynamic clustering
========  ==========================================================

Worker grid (paper Fig. 5/9): ``p = N_g x N_c`` workers.  A *group* owns
one slice of the tile elements and spans ``N_c`` workers (one per
cluster) joined by a ring for weight collectives; a *cluster* owns one
batch shard and spans ``N_g`` workers joined by a flattened butterfly for
tile transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import List, Tuple

from ..params import DEFAULT_PARAMS, HardwareParams


#: The paper's three dynamic-clustering settings for p = 256 and a 4x4
#: tile (Section VII-A); every pair multiplies out to the same worker
#: count, which the statcheck CFG002 rule enforces on literal grids.
PAPER_GRIDS: Tuple[Tuple[int, int], ...] = ((16, 16), (4, 64), (1, 256))


@dataclass(frozen=True)
class GridConfig:
    """One ``(N_g, N_c)`` organisation of ``p`` workers."""

    num_groups: int
    num_clusters: int

    def __post_init__(self) -> None:
        if self.num_groups < 1 or self.num_clusters < 1:
            raise ValueError(f"invalid grid {self}")

    @property
    def workers(self) -> int:
        return self.num_groups * self.num_clusters


@dataclass(frozen=True)
class SystemConfig:
    """One Table IV system configuration.

    Attributes
    ----------
    name:
        Table IV abbreviation.
    conv:
        ``"direct"`` or ``"winograd"``.
    mpt:
        Whether intra-tile parallelism is available (otherwise pure DP).
    prediction:
        Activation prediction + zero-skipping enabled.
    dynamic_clustering:
        Per-layer ``(N_g, N_c)`` selection enabled.
    update_domain:
        ``"spatial"`` (all-reduce r x r gradients) or ``"winograd"``
        (Winograd layer: all-reduce T x T gradients).
    collective_rings:
        Independent rings used for weight collectives.  DP dedicates all
        four I/O links (4 rings); MPT reserves half the links for the
        cluster FBFLY (2 rings) — Section VII-A.
    """

    name: str
    conv: str = "winograd"
    mpt: bool = False
    prediction: bool = False
    dynamic_clustering: bool = False
    update_domain: str = "spatial"
    collective_rings: int = 4

    def __post_init__(self) -> None:
        if self.conv not in ("direct", "winograd"):
            raise ValueError(f"unknown conv mode {self.conv!r}")
        if self.update_domain not in ("spatial", "winograd"):
            raise ValueError(f"unknown update domain {self.update_domain!r}")
        if self.collective_rings < 1:
            raise ValueError(
                f"collective_rings must be >= 1, got {self.collective_rings}"
            )


# The Table IV constructors return interned singletons (the configs are
# frozen): sweeps call them inside per-point loops, and a stable object
# identity lets the sweep-cache key builder reuse the memoized canonical
# form instead of re-walking the fields on every evaluation.
@lru_cache(maxsize=None)
def d_dp() -> SystemConfig:
    return SystemConfig(name="d_dp", conv="direct", collective_rings=4)


@lru_cache(maxsize=None)
def w_dp() -> SystemConfig:
    return SystemConfig(name="w_dp", conv="winograd", collective_rings=4)


@lru_cache(maxsize=None)
def w_mp() -> SystemConfig:
    return SystemConfig(
        name="w_mp", mpt=True, update_domain="winograd", collective_rings=2
    )


@lru_cache(maxsize=None)
def w_mp_plus() -> SystemConfig:
    return replace(w_mp(), name="w_mp+", prediction=True)


@lru_cache(maxsize=None)
def w_mp_plus_plus() -> SystemConfig:
    return replace(w_mp_plus(), name="w_mp++", dynamic_clustering=True)


def table4_configs() -> List[SystemConfig]:
    """All five Table IV configurations."""
    return [d_dp(), w_dp(), w_mp(), w_mp_plus(), w_mp_plus_plus()]


@lru_cache(maxsize=None)
def clustering_candidates(p: int, tile_elems: int) -> Tuple[GridConfig, ...]:
    """The dynamic-clustering configurations for ``p`` workers.

    The paper's three settings for p = 256 and a 4x4 tile are
    ``(16, 16)``, ``(4, 64)`` and ``(1, 256)``.  ``N_g`` ranges over the
    host-bridgeable group counts (powers of 4 up to the physical 16-group
    organisation) that do not exceed the tile element count; when
    ``tile_elems`` is not divisible (e.g. the 36 elements of F(2x2,5x5)
    over 16 groups) elements are assigned with a ceiling split and the
    performance model charges the worst-loaded worker.
    """
    candidates: List[GridConfig] = []
    ng = 1
    while ng <= min(tile_elems, p, 16):
        if p % ng == 0:
            candidates.append(GridConfig(num_groups=ng, num_clusters=p // ng))
        ng *= 4
    if not candidates:
        candidates.append(GridConfig(num_groups=1, num_clusters=p))
    # Tuple: the result is cached and shared between callers.
    return tuple(candidates)


def default_grid(config: SystemConfig, p: int, tile_elems: int) -> GridConfig:
    """The fixed grid used when dynamic clustering is off: pure DP for
    non-MPT configs; the squarest candidate (``(16, 16)`` at p = 256,
    Section VII-A) for MPT."""
    if not config.mpt:
        return GridConfig(num_groups=1, num_clusters=p)
    candidates = clustering_candidates(p, tile_elems)
    return max(candidates, key=lambda g: g.num_groups)


@dataclass(frozen=True)
class MachineConfig:
    """The simulated machine: worker count, batch and hardware constants."""

    workers: int = 256
    batch: int = 256
    params: HardwareParams = field(default_factory=lambda: DEFAULT_PARAMS)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.batch % self.workers and self.workers % self.batch:
            raise ValueError(
                f"batch {self.batch} and workers {self.workers} must divide "
                "one another for an even shard"
            )
