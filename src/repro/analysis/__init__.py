"""Per-figure data generators and table rendering."""

from .figures import (
    fault_degradation_rows,
    fig01_rows,
    fig06_rows,
    fig07_rows,
    fig12_rows,
    fig14_rows,
    fig15_average_speedup,
    fig15_rows,
    fig16_rows,
    fig17_rows,
    fig18_rows,
    table1_rows,
    table2_rows,
)
from .planner import pareto_frontier, planner_pareto_rows, planner_rows
from .tables import format_table

__all__ = [
    "fault_degradation_rows",
    "fig01_rows",
    "fig06_rows",
    "fig07_rows",
    "fig12_rows",
    "fig14_rows",
    "fig15_average_speedup",
    "fig15_rows",
    "fig16_rows",
    "fig17_rows",
    "fig18_rows",
    "pareto_frontier",
    "planner_pareto_rows",
    "planner_rows",
    "table1_rows",
    "table2_rows",
    "format_table",
]
