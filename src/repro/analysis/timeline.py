"""Text-mode Gantt rendering of simulated task schedules.

Turns the :class:`repro.ndp.TaskExecutor` schedule into an ASCII timeline
so the compute/communication overlap of a training iteration can be
inspected (e.g. collectives hiding behind backward compute).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..ndp.taskgraph import ScheduleEntry


def render_timeline(
    schedule: Sequence[ScheduleEntry],
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """Render a schedule as one row per resource.

    Each task paints its name's first letters over its time span; ``.``
    marks idle time.
    """
    if not schedule:
        return "(empty schedule)"
    end = max(entry.finish_s for entry in schedule)
    if end <= 0:
        return "(zero-length schedule)"
    scale = width / end

    by_resource: Dict[str, List[ScheduleEntry]] = {}
    for entry in schedule:
        by_resource.setdefault(entry.resource, []).append(entry)

    lines = [f"timeline: 1 column = {end / width * 1e6:.2f} us, total "
             f"{end * 1e6:.1f} us"]
    for resource in sorted(by_resource):
        row = ["."] * width
        for entry in by_resource[resource]:
            start = min(width - 1, int(entry.start_s * scale))
            stop = max(start + 1, min(width, int(entry.finish_s * scale)))
            label = (entry.name * width)[: stop - start]
            for offset, ch in enumerate(label):
                row[start + offset] = ch
        lines.append(f"{resource:>12} |{''.join(row)}|")
        if len(lines) > max_rows:
            lines.append(f"... ({len(by_resource) - max_rows} more resources)")
            break
    return "\n".join(lines)


def utilization(schedule: Sequence[ScheduleEntry]) -> Dict[str, float]:
    """Busy fraction per resource over the makespan."""
    if not schedule:
        return {}
    end = max(entry.finish_s for entry in schedule)
    if end <= 0:
        return {}
    busy: Dict[str, float] = {}
    for entry in schedule:
        busy[entry.resource] = busy.get(entry.resource, 0.0) + (
            entry.finish_s - entry.start_s
        )
    return {resource: time / end for resource, time in busy.items()}
