"""Data generators for every table and figure of the paper's evaluation.

Each ``figNN_rows`` function returns the series the corresponding figure
plots (as dictionaries, ready for tabulation or plotting); the benchmark
harness prints them and EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List, Optional

from ..core import (
    GridConfig,
    MachineConfig,
    TrainingSimulator,
    layer_comm_volume,
    table4_configs,
    w_dp,
    w_mp,
    w_mp_plus,
    w_mp_plus_plus,
)
from ..gpu import DgxSystem
from ..params import entire_cnn_params
from ..prediction import default_datasets, run_prediction_sweep
from ..winograd import make_transform
from ..winograd.costs import access_increase, compute_reduction
from ..workloads import CnnSpec, five_layers, table1_networks


def fig01_rows(batch: int = 256) -> List[Dict]:
    """Fig. 1: compute reduction and memory-access increase of Winograd
    vs direct convolution for the five Table II layers."""
    rows = []
    for m in (4, 2):
        transform = make_transform(m, 3)
        for layer in five_layers():
            rows.append(
                {
                    "transform": f"F({m}x{m},3x3)",
                    "layer": layer.name,
                    "compute_reduction_x": compute_reduction(layer, batch, transform),
                    "access_increase_x": access_increase(layer, batch, transform),
                }
            )
    return rows


def fig06_rows(batch: int = 256, workers: int = 256) -> List[Dict]:
    """Fig. 6: per-worker communication of the Early and Late layers
    under DP and MPT strategies."""
    rows = []
    strategies = [
        (w_dp(), GridConfig(1, workers)),
        (w_mp(), GridConfig(4, workers // 4)),
        (w_mp(), GridConfig(16, workers // 16)),
        (w_mp_plus(), GridConfig(16, workers // 16)),
    ]
    layers = [five_layers()[0], five_layers()[-1]]
    for layer in layers:
        for config, grid in strategies:
            volume = layer_comm_volume(layer, batch, config, grid)
            rows.append(
                {
                    "layer": layer.name,
                    "strategy": f"{config.name}({grid.num_groups},{grid.num_clusters})",
                    "weight_MB": volume.weight_bytes / 1e6,
                    "tile_MB": volume.tile_bytes / 1e6,
                    "total_MB": volume.total_bytes / 1e6,
                }
            )
    return rows


def fig07_rows(
    batch: int = 256, worker_counts: Optional[List[int]] = None
) -> List[Dict]:
    """Fig. 7: per-worker communication per iteration of FractalNet
    training versus worker count, DP vs MPT (Ng = Nc = sqrt(p))."""
    from ..workloads import fractalnet_4_4

    worker_counts = worker_counts or [4, 16, 64, 256, 1024]
    net = fractalnet_4_4()
    rows = []
    for p in worker_counts:
        sqrt_p = int(math.isqrt(p))
        ng = min(sqrt_p, 16)
        grids = {
            "dp": (w_dp(), GridConfig(1, p)),
            "mpt": (w_mp(), GridConfig(ng, p // ng)),
            "mpt+pred": (w_mp_plus(), GridConfig(ng, p // ng)),
        }
        row: Dict = {"workers": p}
        for name, (config, grid) in grids.items():
            total = sum(
                layer_comm_volume(layer, batch, config, grid).total_bytes
                for layer in net.conv_layers
            )
            row[f"{name}_MB"] = total / 1e6
        rows.append(row)
    return rows


def fig12_rows(seed: int = 0) -> List[Dict]:
    """Fig. 12: actual and predicted non-activation ratios across
    quantiser configurations, plus Section V-B traffic reductions."""
    sweep = run_prediction_sweep(default_datasets(seed))
    rows: List[Dict] = []
    for row in sweep.rows:
        rows.append(
            {
                "dataset": row.dataset,
                "mode": row.mode,
                "regions": row.regions,
                "levels": row.levels,
                "predicted_ratio": row.predicted_ratio,
                "actual_ratio": row.actual_ratio,
                "false_negatives": row.false_negatives,
            }
        )
    for (name, mode), value in sorted(sweep.gather_reduction.items()):
        rows.append(
            {"dataset": name, "mode": mode, "gather_traffic_reduction": value}
        )
    for (name, mode), value in sorted(sweep.scatter_reduction.items()):
        rows.append(
            {"dataset": name, "mode": mode, "scatter_traffic_reduction": value}
        )
    return rows


def fig14_rows(epochs: int = 6, samples: int = 256, seed: int = 0) -> List[Dict]:
    """Fig. 14: standard vs modified (Winograd-domain) FractalNet join —
    training curves must match."""
    from ..nn import fractalnet_small, train, train_val_datasets

    train_data, val_data = train_val_datasets(samples, 64, classes=4, size=16, seed=seed)
    rows = []
    for mode in ("spatial", "winograd"):
        net = fractalnet_small(join_mode=mode, width=8, classes=4, seed=seed)
        curve = train(net, train_data, val_data, epochs=epochs, batch_size=32,
                      lr=0.1, seed=seed)
        for epoch, (loss, acc) in enumerate(
            zip(curve.losses, curve.val_accuracies), start=1
        ):
            rows.append(
                {"join": mode, "epoch": epoch, "loss": loss, "val_accuracy": acc}
            )
    return rows


def fig15_rows(workers: int = 256, batch: int = 256) -> List[Dict]:
    """Fig. 15: execution time and energy of the five layers under the
    Table IV configurations, normalised to w_dp forward."""
    sim = TrainingSimulator(MachineConfig(workers=workers, batch=batch))
    rows = []
    for layer in five_layers():
        baseline = sim.evaluate_single_layer(layer, w_dp())
        norm = baseline.forward_s
        for config in table4_configs():
            report = sim.evaluate_single_layer(layer, config)
            energy = report.perf.energy_j
            rows.append(
                {
                    "layer": layer.name,
                    "config": config.name,
                    "grid": f"({report.grid.num_groups},{report.grid.num_clusters})",
                    "fwd_norm": report.forward_s / norm,
                    "bwd_norm": report.backward_s / norm,
                    "total_us": (report.forward_s + report.backward_s) * 1e6,
                    "speedup_vs_w_dp": (baseline.forward_s + baseline.backward_s)
                    / (report.forward_s + report.backward_s),
                    "energy_compute_mJ": energy.compute_j * 1e3,
                    "energy_sram_mJ": energy.sram_j * 1e3,
                    "energy_dram_mJ": energy.dram_j * 1e3,
                    "energy_link_mJ": (energy.link_j + energy.link_idle_j) * 1e3,
                }
            )
    return rows


def fig15_average_speedup(rows: Optional[List[Dict]] = None) -> float:
    """The headline layer-wise number: mean w_mp++ speedup over w_dp
    (paper: 2.74x)."""
    rows = rows or fig15_rows()
    speedups = [r["speedup_vs_w_dp"] for r in rows if r["config"] == "w_mp++"]
    return statistics.mean(speedups)


def fig16_rows(workers: int = 256, batch: int = 256) -> List[Dict]:
    """Fig. 16: normalised performance of the five layers with 3x3 vs
    5x5 weights (paper: 2.74x -> 3.03x for w_mp++)."""
    sim = TrainingSimulator(MachineConfig(workers=workers, batch=batch))
    rows = []
    for kernel in (3, 5):
        speedups = {c.name: [] for c in table4_configs()}
        for base_layer in five_layers():
            layer = base_layer.with_kernel(kernel)
            baseline = sim.evaluate_single_layer(layer, w_dp())
            base_total = baseline.forward_s + baseline.backward_s
            for config in table4_configs():
                report = sim.evaluate_single_layer(layer, config)
                speedups[config.name].append(
                    base_total / (report.forward_s + report.backward_s)
                )
        for name, values in speedups.items():
            rows.append(
                {
                    "kernel": f"{kernel}x{kernel}",
                    "config": name,
                    "avg_speedup_vs_w_dp": statistics.mean(values),
                }
            )
    return rows


def fig17_rows(
    batch: int = 256,
    networks: Optional[List[CnnSpec]] = None,
    ndp_worker_counts: Optional[List[int]] = None,
) -> List[Dict]:
    """Fig. 17: multi-GPU scaling (1-8 GPUs) vs NDP scaling (1-256
    workers), throughput normalised to one NDP worker."""
    networks = networks or table1_networks()
    ndp_worker_counts = ndp_worker_counts or [1, 4, 16, 64, 256]
    dgx = DgxSystem()
    rows = []
    params = entire_cnn_params()
    for net in networks:
        base = TrainingSimulator(MachineConfig(workers=1, batch=batch, params=params))
        base_result = base.simulate_iteration(net, w_dp())
        base_throughput = base_result.images_per_s
        for gpus in (1, 2, 4, 8):
            result = dgx.simulate_iteration(net, batch, gpus)
            rows.append(
                {
                    "network": net.name,
                    "system": f"{gpus}-GPU",
                    "images_per_s": result.images_per_s,
                    "speedup_vs_1ndp": result.images_per_s / base_throughput,
                }
            )
        for workers in ndp_worker_counts:
            sim = TrainingSimulator(
                MachineConfig(workers=workers, batch=batch, params=params)
            )
            for config in (w_dp(), w_mp_plus_plus()):
                result = sim.simulate_iteration(net, config)
                rows.append(
                    {
                        "network": net.name,
                        "system": f"{workers}-NDP {config.name}",
                        "images_per_s": result.images_per_s,
                        "speedup_vs_1ndp": result.images_per_s / base_throughput,
                    }
                )
    return rows


def fig18_rows(batch: int = 256) -> List[Dict]:
    """Fig. 18: 8-GPU at its best batch size vs 256-NDP at batch 256 —
    throughput and performance per watt."""
    dgx = DgxSystem()
    params = entire_cnn_params()
    rows = []
    for net in table1_networks():
        best = dgx.best_batch(net, 8)
        gpu_power = dgx.power_w(8)
        sim = TrainingSimulator(MachineConfig(workers=256, batch=batch, params=params))
        ndp = sim.simulate_iteration(net, w_mp_plus_plus())
        ndp_power = ndp.energy_j.total_j / ndp.iteration_s
        rows.append(
            {
                "network": net.name,
                "gpu_best_batch": best.batch,
                "gpu_images_per_s": best.images_per_s,
                "gpu_power_w": gpu_power,
                "ndp_images_per_s": ndp.images_per_s,
                "ndp_power_w": ndp_power,
                "perf_ratio": ndp.images_per_s / best.images_per_s,
                "perf_per_watt_ratio": (ndp.images_per_s / ndp_power)
                / (best.images_per_s / gpu_power),
            }
        )
    return rows


def fault_degradation_rows(
    message_bytes: int = 64 * 1024, seed: int = 0
) -> List[Dict]:
    """Degradation sweep (beyond the paper): every fault scenario on
    every paper grid — collective slowdown versus the fault-free
    machine, retransmissions, and recovery latency."""
    from ..core.config import PAPER_GRIDS
    from ..faults import run_scenario_on_grid, scenario_names

    rows = []
    for scenario in scenario_names():
        for num_groups, num_clusters in PAPER_GRIDS:
            row = run_scenario_on_grid(
                scenario, num_groups, num_clusters,
                seed=seed, message_bytes=message_bytes,
            )
            rows.append(
                {
                    "scenario": scenario,
                    "grid": row["grid"],
                    "ring_after": row["ring_size_after"],
                    "baseline_us": row["baseline_s"] * 1e6,
                    "faulted_us": row["faulted_s"] * 1e6,
                    "slowdown": row["slowdown"],
                    "retransmits": row["retransmits"],
                    "dead": len(row["dead_workers"]),
                    "reconfig_us": row["reconfig_latency_s"] * 1e6,
                    "completed": row["completed"],
                }
            )
    return rows


def table1_rows() -> List[Dict]:
    """Table I: the three evaluated CNNs."""
    return [
        {
            "network": net.name,
            "dataset": net.dataset,
            "conv_layers": len(net.conv_layers),
            "params_M": net.param_count / 1e6,
        }
        for net in table1_networks()
    ]


def table2_rows() -> List[Dict]:
    """Table II: the five evaluated layers."""
    return [
        {
            "layer": layer.name,
            "channels": f"{layer.in_channels}x{layer.out_channels}",
            "feature_map": f"{layer.height}x{layer.width}",
            "kernel": f"{layer.kernel}x{layer.kernel}",
            "weight_KB": layer.weight_count * 4 / 1024,
        }
        for layer in five_layers()
    ]
