"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
