"""Planner analysis: greedy-vs-DP comparison and the Pareto frontier.

``planner_rows`` is the ``planner_battery`` benchmark body and the
``repro figure planner`` generator: for each paper workload and
transition preset it prices the greedy per-layer baseline and the DP
chain under the same fold and reports the savings.  ``planner_pareto_
rows`` sweeps objectives and presets, places every resulting plan in
(time, energy) space and marks the non-dominated frontier.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.config import w_mp_plus_plus
from ..planner import StrategyKnobs, greedy_plan, plan_network, preset
from ..workloads import vgg16, wide_resnet_40_10


def pareto_frontier(points: Sequence[Tuple[float, float]]) -> List[bool]:
    """Non-dominated flags for ``(time_s, energy_j)`` points.

    A point is on the frontier iff no other point is at least as good in
    both objectives and strictly better in one.  Duplicate points are
    all kept (neither strictly dominates the other).
    """
    flags: List[bool] = []
    for i, (time_i, energy_i) in enumerate(points):
        dominated = False
        for j, (time_j, energy_j) in enumerate(points):
            if j == i:
                continue
            if (
                time_j <= time_i
                and energy_j <= energy_i
                and (time_j < time_i or energy_j < energy_i)
            ):
                dominated = True
                break
        flags.append(not dominated)
    return flags


#: Workloads and presets the battery compares.
_BATTERY_NETWORKS = (("VGG-16", vgg16), ("WRN-40-10", wide_resnet_40_10))
_BATTERY_PRESETS = ("zero", "rerouted", "weights-only")


def planner_rows(workers: int = 256, batch: int = 256) -> List[Dict]:
    """Greedy vs DP chain totals per (network, transition preset).

    Under the ``zero`` preset the two must agree bit for bit (the DP
    decomposes into per-layer argmins); under any priced preset the DP
    total is never worse.
    """
    config = w_mp_plus_plus()
    rows: List[Dict] = []
    for _name, build in _BATTERY_NETWORKS:
        net = build()
        for preset_name in _BATTERY_PRESETS:
            transition = preset(preset_name)
            greedy = greedy_plan(
                net, config, workers, batch, transition=transition
            )
            dp = plan_network(
                net, config, workers, batch, transition=transition
            )
            rows.append(
                {
                    "network": net.name,
                    "preset": preset_name,
                    "greedy_ms": greedy.total_cost * 1e3,
                    "dp_ms": dp.total_cost * 1e3,
                    "savings_pct": (
                        (greedy.total_cost - dp.total_cost)
                        / greedy.total_cost * 100.0
                        if greedy.total_cost
                        else 0.0
                    ),
                    "dp_transitions": dp.transitions,
                    "same_grids": dp.grids == greedy.grids,
                }
            )
    return rows


def planner_pareto_rows(
    network: str = "wrn-40-10", workers: int = 256, batch: int = 256
) -> List[Dict]:
    """(time, energy) positions of greedy and DP plans across presets
    and objectives, with the widened strategy space, frontier-flagged."""
    from ..planner import network_by_name

    net = network_by_name(network)
    config = w_mp_plus_plus()
    knobs = StrategyKnobs(search_transforms=True, batch_splits=(1, 2, 4))
    plans = []
    for preset_name in ("zero", "rerouted"):
        transition = preset(preset_name)
        plans.append(
            (
                f"greedy/{preset_name}",
                greedy_plan(net, config, workers, batch, transition=transition),
            )
        )
        for objective in ("time", "energy"):
            plans.append(
                (
                    f"dp-{objective}/{preset_name}",
                    plan_network(
                        net, config, workers, batch, knobs, transition,
                        objective,
                    ),
                )
            )
    points = [(plan.time_s, plan.energy_j) for _label, plan in plans]
    frontier = pareto_frontier(points)
    return [
        {
            "plan": label,
            "time_ms": plan.time_s * 1e3,
            "energy_j": plan.energy_j,
            "transitions": plan.transitions,
            "on_frontier": on_frontier,
        }
        for (label, plan), on_frontier in zip(plans, frontier)
    ]
